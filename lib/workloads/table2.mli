(** The Table 2 harness: run every benchmark under the three
    configurations of the paper's evaluation — uninstrumented, FASTTRACK,
    and RD2 (which, like the paper's setup, also keeps the low-level
    memory instrumentation on) — and print the same rows Table 2 reports.

    Race counts are deterministic (seeded scheduler); throughput numbers
    are wall-clock and machine-dependent, so EXPERIMENTS.md compares
    relative overheads, not absolute qps. *)

type h2_row = {
  bench : string;
  queries : int;
  uninstrumented_qps : float;
  fasttrack_qps : float;
  rd2_qps : float;
  ft_total : int;
  ft_distinct : int;
  rd2_total : int;
  rd2_distinct : int;
}

type cassandra_row = {
  uninstrumented_s : float;
  fasttrack_s : float;
  rd2_s : float;
  c_ft_total : int;
  c_ft_distinct : int;
  c_rd2_total : int;
  c_rd2_distinct : int;
}

type t = { h2 : h2_row list; cassandra : cassandra_row }

val collect :
  ?seed:int64 -> ?scale:int -> ?repeats:int -> ?jobs:int -> unit -> t
(** [repeats] re-runs each timed configuration and keeps the best time
    (default 1). With [jobs > 1] the FASTTRACK and RD2 configurations
    switch from live analysis to record-then-analyze with
    {!Crd.Shard.analyze} over [jobs] domains; the timed region covers
    recording plus analysis, and race counts are the (identical) merged
    shard reports. *)

val print : t Fmt.t

val rd2_race_counts :
  ?seed:int64 -> ?scale:int -> string -> (int * int * int) option
(** [rd2_race_counts bench] runs one benchmark (an H2 circuit name or
    ["DynamicEndpointSnitch"]) under RD2 only and returns
    [(total, distinct, distinct_objects)] — total races, distinct race
    fingerprints ({!Crd.Report.distinct}, the per-race identity the
    table reports), and the coarser distinct racing objects — used by
    tests that pin the deterministic race counts. *)
