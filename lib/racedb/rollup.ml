type t = {
  res : int;
  buckets : int array;  (* bucket number per slot; -1 = empty *)
  counts : int array;
}

let create ~res ~slots =
  if res < 1 then invalid_arg "Rollup.create: res < 1";
  if slots < 1 then invalid_arg "Rollup.create: slots < 1";
  { res; buckets = Array.make slots (-1); counts = Array.make slots 0 }

let res t = t.res
let slots t = Array.length t.buckets

let copy t =
  { res = t.res; buckets = Array.copy t.buckets; counts = Array.copy t.counts }

(* The freshest bucket in the ring; new data never goes backwards past a
   full window, so anything older than [newest - slots + 1] is dead. *)
let newest t = Array.fold_left max (-1) t.buckets

let add_bucket t ~bucket ~count =
  if bucket >= 0 && count > 0 then begin
    let slot = bucket mod Array.length t.buckets in
    let cur = t.buckets.(slot) in
    if cur = bucket then t.counts.(slot) <- t.counts.(slot) + count
    else if bucket > cur then begin
      (* the slot's previous tenant is a full window old: evict *)
      t.buckets.(slot) <- bucket;
      t.counts.(slot) <- count
    end
    (* bucket < cur: the sample is older than the retained window *)
  end

let bucket_of t ts = int_of_float ts / t.res

let add ?(count = 1) t ts =
  if ts >= 0. then add_bucket t ~bucket:(bucket_of t ts) ~count

let merge_into dst src =
  if dst.res <> src.res then invalid_arg "Rollup.merge_into: resolution mismatch";
  Array.iteri
    (fun slot bucket ->
      if bucket >= 0 then add_bucket dst ~bucket ~count:src.counts.(slot))
    src.buckets

(* Slot-wise lattice join: per slot keep the lexicographically greater
   (bucket, count) pair. Unlike [merge_into] this never adds, so joining
   replicas of the same ring is idempotent — the replication merge.
   The price of idempotence without per-node rings: when two nodes
   independently observe the same fingerprint in the same bucket the
   join keeps max(a, b), not a + b, so replicated time-series are
   LOWER BOUNDS on the fleet-wide rate. The per-node G-counter
   (Entry.counts) stays exact; query totals should come from it. *)
let join dst src =
  if dst.res <> src.res then invalid_arg "Rollup.join: resolution mismatch";
  if Array.length dst.buckets <> Array.length src.buckets then
    invalid_arg "Rollup.join: slot count mismatch";
  Array.iteri
    (fun slot bucket ->
      let cur = dst.buckets.(slot) in
      if bucket > cur then begin
        dst.buckets.(slot) <- bucket;
        dst.counts.(slot) <- src.counts.(slot)
      end
      else if bucket = cur && src.counts.(slot) > dst.counts.(slot) then
        dst.counts.(slot) <- src.counts.(slot))
    src.buckets

let equal a b =
  a.res = b.res && a.buckets = b.buckets && a.counts = b.counts

(* A slot is live iff its bucket is within one window of the newest
   bucket; older tenants survive only in slots never reused since. *)
let iter_live t f =
  let hi = newest t in
  let lo = hi - Array.length t.buckets + 1 in
  Array.iteri
    (fun slot bucket -> if bucket >= lo && bucket >= 0 then f bucket t.counts.(slot))
    t.buckets

let total t =
  let acc = ref 0 in
  iter_live t (fun _ c -> acc := !acc + c);
  !acc

let total_since t cutoff =
  let acc = ref 0 in
  iter_live t (fun b c ->
      if float_of_int ((b + 1) * t.res) > cutoff then acc := !acc + c);
  !acc

let to_list t =
  let xs = ref [] in
  iter_live t (fun b c -> xs := (b, c) :: !xs);
  List.sort (fun (a, _) (b, _) -> compare a b) !xs
  |> List.map (fun (b, c) -> (float_of_int (b * t.res), c))

(* Wire form: res, slots, then (bucket+1, count) per slot — the +1 keeps
   empty slots (-1) in varint range. *)
let encode b t =
  Crd_wire.Codec.add_varint b t.res;
  Crd_wire.Codec.add_varint b (Array.length t.buckets);
  Array.iteri
    (fun slot bucket ->
      Crd_wire.Codec.add_varint b (bucket + 1);
      Crd_wire.Codec.add_varint b t.counts.(slot))
    t.buckets

let decode s pos =
  let res, pos = Crd_wire.Codec.get_varint s pos in
  let n, pos = Crd_wire.Codec.get_varint s pos in
  if res < 1 || n < 1 || n > 1 lsl 16 then failwith "rollup: bad shape";
  let t = create ~res ~slots:n in
  let pos = ref pos in
  for slot = 0 to n - 1 do
    let b, p = Crd_wire.Codec.get_varint s !pos in
    let c, p = Crd_wire.Codec.get_varint s p in
    t.buckets.(slot) <- b - 1;
    t.counts.(slot) <- c;
    pos := p
  done;
  (t, !pos)
