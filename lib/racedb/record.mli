(** The durable unit of the race database: one report, stamped with the
    observation time and the specification set that produced it.

    The binary form is self-contained (no interning tables): a record
    must stay decodable in isolation after compaction has thrown the
    surrounding session away. It round-trips the {e whole} report —
    including the optional [prior] [(tid, action)] hint, which the
    text pipeline previously lost on every serialization boundary. *)

open Crd_detector

type t = {
  ts : float;
  spec : string;
  report : Report.t;
  provenance : Provenance.t;
      (** how the race was found; witnessed records encode byte-identically
          to the pre-provenance format *)
}

val max_bytes : int
(** Upper bound on a sane encoded record; frames claiming more are
    treated as corruption by the segment scanner. *)

val make : ?ts:float -> ?provenance:Provenance.t -> spec:string -> Report.t -> t
(** [provenance] defaults to {!Provenance.Witnessed}. *)

val fingerprint : t -> int64
(** [Report.fingerprint] of the payload. *)

val equal : t -> t -> bool
(** Structural equality, object {e names} included (object ids compare
    by id only elsewhere; the wire form must reproduce names too). *)

val encode : t -> string
(** Unframed payload; the segment store adds length and checksum. *)

val decode : string -> (t, string) result
(** Inverse of {!encode}; rejects trailing bytes. *)

val pp : t Fmt.t
