(** One racedb index entry, shaped as a state-based CRDT so replicas
    can merge without coordination:

    - [counts] is a G-counter keyed by node id (each node only ever
      bumps its own component, so pointwise max is the merge);
    - [ver] is the update version vector — [ver.(n)] is the sequence
      number of node [n]'s latest local update folded into this entry,
      the basis for delta computation in {!Db.delta};
    - [first_seen]/[last_seen] are min/max registers;
    - the rollup rings merge slot-wise by {!Rollup.join};
    - [sample] is elected deterministically (earliest timestamp, ties
      by smallest encoding), so every gossip order converges.

    {!merge} is commutative, associative and idempotent — the laws the
    [test_sync] qcheck properties pin down. *)

type t = {
  fingerprint : int64;
  counts : Vv.t;  (** per-node G-counter; lifetime total is {!count} *)
  ver : Vv.t;  (** per-node sequence of the latest update, for deltas *)
  first_seen : float;
  last_seen : float;
  sample : Record.t;  (** deterministically elected sample record *)
  minutes : Rollup.t;  (** 60 × 1-minute buckets *)
  hours : Rollup.t;  (** 48 × 1-hour buckets *)
  days : Rollup.t;  (** 30 × 1-day buckets *)
  provenance : Provenance.t;
      (** join over all folded records and merged replicas; [Witnessed]
          absorbs, so a prediction later seen live is promoted and never
          demoted back *)
}

val count : t -> int
(** Sum of the G-counter components — the lifetime occurrence count. *)

val merge : t -> t -> t
(** Lattice join of two replicas of the same fingerprint; the result's
    rings are fresh copies (no aliasing with either argument).
    @raise Invalid_argument on fingerprint or ring-shape mismatch. *)

val equal : t -> t -> bool
val snapshot : t -> t
(** Deep copy (fresh rings). *)

val encode : Buffer.t -> t -> unit

val decode : string -> int -> t * int
(** Self-delimiting; returns the next offset.
    @raise Failure on malformed input. *)

val decode_v2 : string -> int -> t * int
(** Decode a pre-prediction (index v2 / legacy segment-frame / sync v1)
    entry — same layout without the trailing provenance byte. Everything
    stored before prediction existed was witnessed, so the migrated
    entry carries {!Provenance.Witnessed}.
    @raise Failure on malformed input. *)

val decode_v1 : node:string -> seq:int -> string -> int -> t * int
(** Decode a pre-replication (index v1) entry — plain integer count, no
    vectors — migrating it onto [node]: the count becomes [node]'s
    G-counter component and [seq] its [ver] component. Deterministic
    given the same inputs, so re-migrating an unmodified v1 store
    reassigns identical vectors.
    @raise Failure on malformed input. *)

val pp : t Fmt.t
