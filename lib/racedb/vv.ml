type t = (string * int) list

let empty = []
let get t node = match List.assoc_opt node t with Some v -> v | None -> 0

let set t node v =
  if v <= 0 then invalid_arg "Vv.set: non-positive component";
  let rec go = function
    | [] -> [ (node, v) ]
    | (n, _) :: rest when n = node -> (n, v) :: rest
    | (n, x) :: rest when n > node -> (node, v) :: (n, x) :: rest
    | p :: rest -> p :: go rest
  in
  go t

let bump t node = set t node (get t node + 1)

let join a b =
  let rec go a b =
    match (a, b) with
    | [], r | r, [] -> r
    | (na, va) :: ra, (nb, vb) :: rb ->
        if na = nb then (na, max va vb) :: go ra rb
        else if na < nb then (na, va) :: go ra b
        else (nb, vb) :: go a rb
  in
  go a b

let dominates a b = List.for_all (fun (n, v) -> get a n >= v) b
let equal a b = a = b
let to_list t = t

let of_list l =
  List.fold_left
    (fun acc (n, v) ->
      if v <= 0 then acc
      else
        match List.assoc_opt n acc with
        | Some cur -> set acc n (max cur v)
        | None -> set acc n v)
    empty l

let node_max_bytes = 64

let encode b t =
  Crd_wire.Codec.add_varint b (List.length t);
  List.iter
    (fun (n, v) ->
      Crd_wire.Codec.add_varint b (String.length n);
      Buffer.add_string b n;
      Crd_wire.Codec.add_varint b v)
    t

let decode s pos =
  let k, pos = Crd_wire.Codec.get_varint s pos in
  if k < 0 || k > 1 lsl 16 then failwith "vv: bad component count";
  let rec go acc k pos =
    if k = 0 then (of_list (List.rev acc), pos)
    else
      let n, pos = Crd_wire.Codec.get_varint s pos in
      if n < 0 || n > node_max_bytes || pos + n > String.length s then
        failwith "vv: bad node id";
      let node = String.sub s pos n in
      let v, pos = Crd_wire.Codec.get_varint s (pos + n) in
      if v <= 0 then failwith "vv: non-positive component";
      go ((node, v) :: acc) (k - 1) pos
  in
  go [] k pos

let pp ppf t =
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:(Fmt.any ",") (fun ppf (n, v) -> Fmt.pf ppf "%s:%d" n v))
    t
