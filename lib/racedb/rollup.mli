(** Fixed-size time-bucketed counters (rrd-style).

    A rollup is a ring of [slots] counters at resolution [res] seconds:
    bucket [b] (i.e. the interval [[b*res, (b+1)*res)]) lives in slot
    [b mod slots], stamped with its bucket number so a wrapped slot is
    recognized and reset rather than summed into. Memory is fixed
    regardless of traffic, and adding a sample is O(1) — the xcp-rrdd
    aggregation idea, specialized to monotone counters.

    Samples older than the oldest live bucket are dropped on [add] and
    stale slots are ignored by the query side, so the ring only ever
    describes the trailing [slots * res] seconds it retains. *)

type t

val create : res:int -> slots:int -> t
(** @raise Invalid_argument if [res < 1] or [slots < 1]. *)

val res : t -> int
val slots : t -> int

val copy : t -> t

val add : ?count:int -> t -> float -> unit
(** [add t ts] counts [count] (default 1) samples in the bucket holding
    unix time [ts]. Samples older than every live bucket are dropped. *)

val add_bucket : t -> bucket:int -> count:int -> unit
(** Merge a pre-bucketed count (used when folding rollups together). *)

val merge_into : t -> t -> unit
(** [merge_into dst src] adds every live bucket of [src] into [dst].
    @raise Invalid_argument if resolutions differ. *)

val join : t -> t -> unit
(** [join dst src] is the replication merge: per slot, keep the
    lexicographically greater [(bucket, count)] pair. Commutative,
    associative and idempotent (a lattice join), unlike the additive
    [merge_into] used when folding disjoint local data.
    @raise Invalid_argument if resolution or slot count differ. *)

val equal : t -> t -> bool
(** Structural equality over the full ring state (stale slots too). *)

val total : t -> int
(** Sum over all live buckets. *)

val total_since : t -> float -> int
(** Sum over live buckets whose interval ends after the cutoff. *)

val to_list : t -> (float * int) list
(** Live buckets as [(bucket_start_unix_time, count)], oldest first. *)

val encode : Buffer.t -> t -> unit

val decode : string -> int -> t * int
(** [decode s pos] returns the rollup and the next offset.
    @raise Failure on malformed input. *)
