(** How a race entered the database.

    [Witnessed] races were observed as VC-incomparable in a recorded
    execution (the online RD2 detector or [rd2 check]); [Predicted]
    races were derived by {!Crd_predict} from a sound reordering of a
    recorded trace — real by the soundness argument, but never seen
    concurrent in any single observed run.

    The two form a two-point lattice with [Witnessed] on top: once any
    replica witnesses a race, no amount of gossip may demote it back to
    a prediction, so CRDT merges {!join} provenances. *)

type t = Predicted | Witnessed

val join : t -> t -> t
(** Lattice join: [Witnessed] absorbs. Commutative, associative,
    idempotent — the merge laws [test_predict] pins down. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** [Predicted < Witnessed] (the lattice order). *)

val to_string : t -> string
(** ["predicted"] / ["witnessed"] — the [rd2 query --provenance] and
    [--json] vocabulary. *)

val of_string : string -> t option
val pp : t Fmt.t
