(** The embedded race database: a crash-safe append-only segment store
    folded into a deduplicating fingerprint index.

    {2 On-disk layout}

    {v
    DIR/lock                 writer lock (flock'd while a handle is open)
    DIR/seg-NNNNNNNN.log     segment: frame*
    DIR/seg-NNNNNNNN.ok      commit marker: "<bytes>\n" (fsync'd, atomic)
    DIR/index.crdx           compacted dedup index (atomic rename)
    frame ::= varint(len) payload{len} crc32_le(payload)
    v}

    Appends go to the active (highest-numbered) segment and are folded
    into an in-memory index keyed by {!Report.fingerprint}; [sync]
    fsyncs the data and publishes a commit marker, journal-style.
    Compaction seals the active segment, writes the whole in-memory
    index to [index.crdx] with a [folded_up_to] watermark and only then
    deletes the folded segments — a crash at any point either keeps the
    old index plus all segments or the new index with leftovers that
    the watermark retires at the next open, never a double count.

    Opening scans every surviving segment: complete, checksummed frames
    beyond a commit marker are {e salvaged} (counted in [stats]), the
    torn tail after the last valid frame is truncated. A fresh active
    segment is started on every open, so recovery never appends to a
    file another process version half-wrote. *)

type t

type entry = {
  fingerprint : int64;
  count : int;  (** lifetime occurrences *)
  first_seen : float;
  last_seen : float;
  sample : Record.t;  (** earliest-seen record with this fingerprint *)
  minutes : Rollup.t;  (** 60 × 1-minute buckets *)
  hours : Rollup.t;  (** 48 × 1-hour buckets *)
  days : Rollup.t;  (** 30 × 1-day buckets *)
}

type stats = {
  distinct : int;
  total : int;
  segments : int;  (** live segment files, active included *)
  active_id : int;
  folded_up_to : int;  (** highest segment id folded into the index *)
  data_bytes : int;  (** bytes across live segments + index *)
  salvaged : int;  (** records recovered past a commit marker at open *)
  truncated_bytes : int;  (** torn tail bytes discarded at open *)
}

val open_db :
  ?segment_bytes:int ->
  ?sync_every:int ->
  ?auto_compact:int ->
  ?rollups:bool ->
  string ->
  (t, string) result
(** [open_db dir] recovers and opens the database for writing, taking
    the writer lock ([Error] if another process holds it).
    [segment_bytes] (default 1 MiB) is the rotation threshold,
    [sync_every] (default 64) the appends between automatic [sync]s,
    [auto_compact] (default 8) the sealed-segment count that triggers
    an inline compaction (0 disables), [rollups] (default [true])
    whether appends maintain the time rings. *)

val dir : t -> string

val append : t -> Record.t -> unit
(** Frame, checksum and append one record, and fold it into the index.
    @raise Crd_fault.Injected when the [racedb_append] point fires
    (nothing is written).
    @raise Unix.Unix_error on I/O failure. *)

val sync : t -> unit
(** Fsync the active segment and publish its commit marker. *)

val compact : t -> (int, string) result
(** Seal the active segment, persist the index, delete folded segments.
    Returns the number of distinct entries in the new index. [Error]
    (with the store intact and still usable) if the [racedb_compact]
    fault point fires or the index cannot be written. *)

val entries : t -> entry list
(** Snapshot of the index, most frequent first (ties by fingerprint). *)

val stats : t -> stats
val close : t -> unit

val load : string -> (entry list * stats, string) result
(** Read-only view of [dir]: index plus every live segment, salvaging
    torn tails without modifying anything. Safe against a concurrent
    writer except that a compaction racing the scan can momentarily
    hide the records it is folding; query a quiesced store (or the
    same process' {!entries}) for exact counts. *)

val select :
  ?top:int ->
  ?since:float ->
  ?obj:string ->
  ?spec:string ->
  entry list ->
  entry list
(** Filter ([last_seen >= since], exact object / spec name) and keep
    the first [top] entries. *)

val pp_stats : stats Fmt.t
