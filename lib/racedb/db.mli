(** The embedded race database: a crash-safe append-only segment store
    folded into a deduplicating fingerprint index, shaped as a
    state-based CRDT so independent nodes converge by merging
    ({!Entry}, {!Vv}).

    {2 On-disk layout}

    {v
    DIR/lock                 writer lock (flock'd while a handle is open)
    DIR/node                 stable node id (created at first open)
    DIR/seg-NNNNNNNN.log     segment: frame*
    DIR/seg-NNNNNNNN.ok      commit marker: "<bytes>\n" (fsync'd, atomic)
    DIR/index.crdx           compacted dedup index (atomic rename)
    frame   ::= varint(len) payload{len} crc32_le(payload)
    payload ::= 'R' record                      one local record
              | 'B' nonce record*               one session, atomic
              | 'M' entry_v2                    merged replicated entry (legacy)
              | 'G' entry_v2*                   one whole merge, atomic (legacy)
              | 'H' entry*                      one whole merge, atomic
    v}

    Older stores are read transparently: a v1 [index.crdx] (plain
    counts, no vectors) is migrated onto this node's G-counter and
    version components at open — deterministically, so every open
    before the first compaction rewrites it agrees — a v2 index and
    'M'/'G' frames decode as provenance-free entries (everything stored
    before prediction was {!Provenance.Witnessed}), and bare untagged
    record frames in pre-replication segments still replay. The first
    compaction rewrites the index as v3.

    Appends go to the active (highest-numbered) segment and are folded
    into an in-memory index keyed by {!Report.fingerprint}; [sync]
    fsyncs the data and publishes a commit marker, journal-style.
    Compaction seals the active segment, writes the whole in-memory
    index (entries plus the published-nonce set) to [index.crdx] with a
    [folded_up_to] watermark and only then deletes the folded segments —
    a crash at any point either keeps the old index plus all segments
    or the new index with leftovers that the watermark retires at the
    next open, never a double count.

    Opening scans every surviving segment: complete, checksummed frames
    beyond a commit marker are {e salvaged} (counted in [stats]), the
    torn tail after the last valid frame is truncated. A fresh active
    segment is started on every open, so recovery never appends to a
    file another process version half-wrote.

    {2 Replication model}

    Every locally-observed record bumps this node's G-counter component
    and is stamped with the next local sequence number; segments replay
    in write order, so recovery reassigns identical sequence numbers.
    [version] is the database's version vector (pointwise max over
    entry [ver]s), [delta ~since] the entries a peer with that vector
    has not seen, and [merge] the idempotent lattice join — the
    {!Crd_sync} exchange is built from exactly these three. *)

type t

type stats = {
  distinct : int;  (** distinct witnessed races (predicted excluded) *)
  predicted : int;  (** distinct predicted-only races *)
  total : int;
  segments : int;  (** live segment files, active included *)
  active_id : int;
  folded_up_to : int;  (** highest segment id folded into the index *)
  data_bytes : int;  (** bytes across live segments + index *)
  salvaged : int;  (** records recovered past a commit marker at open *)
  truncated_bytes : int;  (** torn tail bytes discarded at open *)
}

val open_db :
  ?segment_bytes:int ->
  ?sync_every:int ->
  ?auto_compact:int ->
  ?rollups:bool ->
  string ->
  (t, string) result
(** [open_db dir] recovers and opens the database for writing, taking
    the writer lock ([Error] if another process holds it) and minting
    [DIR/node] on first open. [segment_bytes] (default 1 MiB) is the
    rotation threshold, [sync_every] (default 64) the appends between
    automatic [sync]s, [auto_compact] (default 8) the sealed-segment
    count that triggers an inline compaction (0 disables), [rollups]
    (default [true]) whether appends maintain the time rings. *)

val dir : t -> string

val node_id : t -> string
(** This database's stable node id (the content of [DIR/node]). *)

val append : t -> Record.t -> unit
(** Frame, checksum and append one record, and fold it into the index
    attributed to this node.
    @raise Crd_fault.Injected when the [racedb_append] point fires
    (nothing is written).
    @raise Unix.Unix_error on I/O failure. *)

val publish : t -> nonce:string -> Record.t list -> bool
(** Publish one session's records as atomic batch frames keyed by the
    session [nonce]. Returns [false] (writing nothing) when the nonce
    was already published — the dedup that makes journal replay after
    a crash count-safe. An empty [nonce] disables dedup; an empty
    record list is a no-op. Oversized sessions split into chunks with
    derived nonces ([nonce#1], ...), deduped chunk by chunk.
    @raise Crd_fault.Injected / Unix.Unix_error as {!append}. *)

val published : t -> string -> bool
(** Has this session nonce already been published (durably)? *)

val merge : t -> Entry.t list -> int
(** Merge replicated entries (the receive side of a sync exchange):
    each entry joins its local counterpart via {!Entry.merge}; all
    changed results are appended durably as a {e single} checksummed
    merge-batch frame and the store is fsynced before returning, so the
    apply is all-or-nothing — a crash or fault mid-merge can never
    durably apply a prefix of the batch and advance [version] past
    entries never applied. Entries already dominated by local state
    write nothing, so re-merging a converged delta is a no-op. Returns
    the number of distinct entries that changed.
    @raise Failure if the encoded batch exceeds the frame limit
    (256 MiB) — nothing is applied; split the batch and retry.
    @raise Crd_fault.Injected when [racedb_append] fires (nothing is
    staged or written). *)

val version : t -> Vv.t
(** Current version vector: pointwise max over all entry [ver]s. *)

val delta : t -> since:Vv.t -> Entry.t list
(** Entries carrying at least one update a peer at [since] has not
    seen, sorted by fingerprint. [delta ~since:(version t)] is []. *)

val sync : t -> unit
(** Fsync the active segment and publish its commit marker. *)

val compact : t -> (int, string) result
(** Seal the active segment, persist the index, delete folded segments.
    Returns the number of distinct entries in the new index. [Error]
    (with the store intact and still usable) if the [racedb_compact]
    fault point fires or the index cannot be written. *)

val entries : t -> Entry.t list
(** Snapshot of the index, most frequent first (ties by fingerprint). *)

val stats : t -> stats
val close : t -> unit

type view = {
  v_entries : Entry.t list;  (** most frequent first *)
  v_stats : stats;
  v_node : string;  (** "" when [DIR/node] is missing *)
  v_version : Vv.t;
}

val load : string -> (view, string) result
(** Read-only view of [dir]: index plus every live segment, salvaging
    torn tails without modifying anything. Safe against a concurrent
    writer except that a compaction racing the scan can momentarily
    hide the records it is folding; query a quiesced store (or the
    same process' {!entries}) for exact counts. *)

val select :
  ?top:int ->
  ?since:float ->
  ?obj:string ->
  ?spec:string ->
  ?provenance:Provenance.t ->
  Entry.t list ->
  Entry.t list
(** Filter ([last_seen >= since], exact object / spec name, exact
    provenance) and keep the first [top] entries. *)

val sort_entries : Entry.t list -> Entry.t list
(** Most frequent first, ties by fingerprint — the [entries] order. *)

val pp_stats : stats Fmt.t
