open Crd_base
open Crd_trace
open Crd_detector
module Codec = Crd_wire.Codec

type t = {
  ts : float;
  spec : string;
  report : Report.t;
  provenance : Provenance.t;
}

(* Sanity bound for segment-frame scanning: no sane record payload
   approaches this, so a larger length varint means tail corruption. *)
let max_bytes = 1 lsl 20

let make ?(ts = 0.) ?(provenance = Provenance.Witnessed) ~spec report =
  { ts; spec; report; provenance }
let fingerprint t = Report.fingerprint t.report

let equal_obj a b = Obj_id.id a = Obj_id.id b && Obj_id.name a = Obj_id.name b

let equal_action (a : Action.t) (b : Action.t) =
  equal_obj a.obj b.obj && a.meth = b.meth
  && List.equal Value.equal a.args b.args
  && List.equal Value.equal a.rets b.rets

let equal a b =
  Int64.equal (Int64.bits_of_float a.ts) (Int64.bits_of_float b.ts)
  && a.spec = b.spec
  && Provenance.equal a.provenance b.provenance
  &&
  let ra = a.report and rb = b.report in
  ra.Report.index = rb.Report.index
  && equal_obj ra.obj rb.obj
  && Tid.to_int ra.tid = Tid.to_int rb.tid
  && equal_action ra.action rb.action
  && ra.point = rb.point && ra.conflicting = rb.conflicting
  && Option.equal
       (fun (t1, a1) (t2, a2) -> Tid.to_int t1 = Tid.to_int t2 && equal_action a1 a2)
       ra.prior rb.prior

let pp ppf t =
  Fmt.pf ppf "@[%s ts=%.3f spec=%s prov=%a %a@]"
    (Report.fingerprint_hex t.report)
    t.ts t.spec Provenance.pp t.provenance Report.pp t.report

(* ------------------------------------------------------------------ *)
(* Binary form. Varints/zigzag reuse the Crd_wire helpers; values are
   tagged like the trace codec but carry strings inline (no interning,
   records decode in isolation). *)

let add_str b s =
  Codec.add_varint b (String.length s);
  Buffer.add_string b s

let add_i64 b v =
  for i = 0 to 7 do
    Buffer.add_char b (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  done

let add_value b = function
  | Value.Nil -> Buffer.add_char b '\x00'
  | Value.Bool false -> Buffer.add_char b '\x01'
  | Value.Bool true -> Buffer.add_char b '\x02'
  | Value.Int i ->
      Buffer.add_char b '\x03';
      Codec.add_varint b (Codec.zigzag i)
  | Value.Str s ->
      Buffer.add_char b '\x04';
      add_str b s
  | Value.Ref r ->
      Buffer.add_char b '\x05';
      Codec.add_varint b (Codec.zigzag r)

let add_values b vs =
  Codec.add_varint b (List.length vs);
  List.iter (add_value b) vs

let add_obj b o =
  Codec.add_varint b (Codec.zigzag (Obj_id.id o));
  add_str b (Obj_id.name o)

let add_action b (a : Action.t) =
  add_obj b a.obj;
  add_str b a.meth;
  add_values b a.args;
  add_values b a.rets

let encode t =
  let b = Buffer.create 128 in
  add_i64 b (Int64.bits_of_float t.ts);
  add_str b t.spec;
  let r = t.report in
  Codec.add_varint b r.Report.index;
  add_obj b r.obj;
  Codec.add_varint b (Tid.to_int r.tid);
  add_action b r.action;
  add_str b r.point;
  add_str b r.conflicting;
  (* The prior tag also carries the provenance (bit 1), so witnessed
     records — the only kind that existed before prediction — stay
     byte-identical to the historical encoding and old samples keep
     electing deterministically. *)
  let prov_bit =
    match t.provenance with Provenance.Witnessed -> 0 | Provenance.Predicted -> 2
  in
  (match r.prior with
  | None -> Buffer.add_char b (Char.chr prov_bit)
  | Some (tid, a) ->
      Buffer.add_char b (Char.chr (1 lor prov_bit));
      Codec.add_varint b (Tid.to_int tid);
      add_action b a);
  Buffer.contents b

let get_str s pos =
  let n, pos = Codec.get_varint s pos in
  if n < 0 || pos + n > String.length s then failwith "record: bad string";
  (String.sub s pos n, pos + n)

let get_i64 s pos =
  if pos + 8 > String.length s then failwith "record: bad i64";
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[pos + i]))
  done;
  (!v, pos + 8)

let get_value s pos =
  if pos >= String.length s then failwith "record: bad value";
  let tag = Char.code s.[pos] in
  let pos = pos + 1 in
  match tag with
  | 0 -> (Value.Nil, pos)
  | 1 -> (Value.Bool false, pos)
  | 2 -> (Value.Bool true, pos)
  | 3 ->
      let v, pos = Codec.get_varint s pos in
      (Value.Int (Codec.unzigzag v), pos)
  | 4 ->
      let v, pos = get_str s pos in
      (Value.Str v, pos)
  | 5 ->
      let v, pos = Codec.get_varint s pos in
      (Value.Ref (Codec.unzigzag v), pos)
  | _ -> failwith "record: bad value tag"

let get_values s pos =
  let n, pos = Codec.get_varint s pos in
  if n < 0 || n > 1 lsl 16 then failwith "record: bad value count";
  let rec go acc n pos =
    if n = 0 then (List.rev acc, pos)
    else
      let v, pos = get_value s pos in
      go (v :: acc) (n - 1) pos
  in
  go [] n pos

let get_obj s pos =
  let id, pos = Codec.get_varint s pos in
  let name, pos = get_str s pos in
  (Obj_id.make ~name (Codec.unzigzag id), pos)

let get_action s pos =
  let obj, pos = get_obj s pos in
  let meth, pos = get_str s pos in
  let args, pos = get_values s pos in
  let rets, pos = get_values s pos in
  (Action.make ~obj ~meth ~args ~rets (), pos)

let decode s =
  match
    let bits, pos = get_i64 s 0 in
    let spec, pos = get_str s pos in
    let index, pos = Codec.get_varint s pos in
    let obj, pos = get_obj s pos in
    let tid, pos = Codec.get_varint s pos in
    let action, pos = get_action s pos in
    let point, pos = get_str s pos in
    let conflicting, pos = get_str s pos in
    if pos >= String.length s then failwith "record: truncated";
    let tag = Char.code s.[pos] in
    if tag > 3 then failwith "record: bad prior tag";
    let provenance =
      if tag land 2 = 0 then Provenance.Witnessed else Provenance.Predicted
    in
    let prior, pos =
      if tag land 1 = 0 then (None, pos + 1)
      else
        let ptid, pos = Codec.get_varint s (pos + 1) in
        let pa, pos = get_action s pos in
        (Some (Tid.of_int ptid, pa), pos)
    in
    if pos <> String.length s then failwith "record: trailing bytes";
    {
      ts = Int64.float_of_bits bits;
      spec;
      provenance;
      report =
        {
          Report.index;
          obj;
          tid = Tid.of_int tid;
          action;
          point;
          conflicting;
          prior;
        };
    }
  with
  | r -> Ok r
  | exception Failure m -> Error m
