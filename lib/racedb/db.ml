module Codec = Crd_wire.Codec

(* --- observability ------------------------------------------------- *)

let m_appends =
  Crd_obs.counter ~help:"Records appended to the race database"
    "racedb_append_total"

let m_bytes =
  Crd_obs.counter ~help:"Frame bytes appended to racedb segments"
    "racedb_append_bytes_total"

let m_syncs =
  Crd_obs.counter ~help:"Racedb commit markers published" "racedb_sync_total"

let m_rotations =
  Crd_obs.counter ~help:"Racedb segment rotations" "racedb_rotations_total"

let m_compactions =
  Crd_obs.counter ~help:"Racedb compactions completed" "racedb_compact_total"

let m_compact_failures =
  Crd_obs.counter ~help:"Racedb compactions aborted (fault or I/O)"
    "racedb_compact_failures_total"

let m_salvaged =
  Crd_obs.counter ~help:"Records salvaged past a commit marker at open"
    "racedb_salvaged_total"

let m_truncated =
  Crd_obs.counter ~help:"Torn tail bytes truncated at open"
    "racedb_truncated_bytes_total"

let m_merges =
  Crd_obs.counter ~help:"Remote entries merged into the race database"
    "racedb_merge_total"

let m_deduped =
  Crd_obs.counter ~help:"Session publications skipped as already published"
    "racedb_publish_dedup_total"

let h_append =
  Crd_obs.histogram ~help:"Racedb append latency" "racedb_append_seconds"

let h_compact =
  Crd_obs.histogram ~help:"Racedb compaction latency" "racedb_compact_seconds"

let fp_append = Crd_fault.point "racedb_append"
let fp_compact = Crd_fault.point "racedb_compact"

(* --- small file helpers (journal.ml idiom) ------------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
  | exception Unix.Unix_error _ -> ()

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < len then go (off + Unix.write fd b off (len - off))
  in
  go 0

let write_file_atomic ~dir path content =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd content;
      Unix.fsync fd);
  Unix.rename tmp path;
  fsync_dir dir

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> Some s
  | exception Sys_error _ -> None

let unlink_quiet path = try Unix.unlink path with Unix.Unix_error _ -> ()

(* --- crc32 (IEEE, as in zip/png) ----------------------------------- *)

let crc_table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let crc32 s off len =
  let c = ref 0xffffffff in
  for i = off to off + len - 1 do
    c := crc_table.((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
        lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

let add_u32le b v =
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let get_u32le s pos =
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code s.[pos + i]
  done;
  !v

(* --- paths --------------------------------------------------------- *)

let seg_path dir id = Filename.concat dir (Printf.sprintf "seg-%08d.log" id)
let marker_path dir id = Filename.concat dir (Printf.sprintf "seg-%08d.ok" id)
let index_path dir = Filename.concat dir "index.crdx"
let lock_path dir = Filename.concat dir "lock"
let node_path dir = Filename.concat dir "node"

let segment_ids dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.filter_map (fun e ->
             match Scanf.sscanf_opt e "seg-%8d.log%!" (fun id -> id) with
             | Some id -> Some id
             | None -> None)
      |> List.sort Int.compare

(* --- node identity -------------------------------------------------- *)

let node_counter = Atomic.make 0

let gen_node_id () =
  let b = Bytes.create 8 in
  let from_urandom =
    match Unix.openfile "/dev/urandom" [ Unix.O_RDONLY ] 0 with
    | fd ->
        let ok =
          let rec go off =
            if off >= 8 then true
            else
              match Unix.read fd b off (8 - off) with
              | 0 -> false
              | n -> go (off + n)
          in
          try go 0 with Unix.Unix_error _ -> false
        in
        (try Unix.close fd with Unix.Unix_error _ -> ());
        ok
    | exception Unix.Unix_error _ -> false
  in
  if from_urandom then
    String.concat ""
      (List.init 8 (fun i -> Printf.sprintf "%02x" (Char.code (Bytes.get b i))))
  else
    Printf.sprintf "%08x%04x%04x"
      (Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e6)) land 0xffffffff)
      (Unix.getpid () land 0xffff)
      (Atomic.fetch_and_add node_counter 1 land 0xffff)

let read_node dir =
  match read_file (node_path dir) with
  | None -> None
  | Some s ->
      let s = String.trim s in
      if s = "" || String.length s > Vv.node_max_bytes then None else Some s

(* --- entries ------------------------------------------------------- *)

type stats = {
  distinct : int;
  predicted : int;
  total : int;
  segments : int;
  active_id : int;
  folded_up_to : int;
  data_bytes : int;
  salvaged : int;
  truncated_bytes : int;
}

let fresh_rings () =
  ( Rollup.create ~res:60 ~slots:60,
    Rollup.create ~res:3600 ~slots:48,
    Rollup.create ~res:86400 ~slots:30 )

let vv_next vvtbl node =
  let seq = (match Hashtbl.find_opt vvtbl node with Some v -> v | None -> 0) + 1 in
  Hashtbl.replace vvtbl node seq;
  seq

let vv_absorb vvtbl ver =
  List.iter
    (fun (n, v) ->
      match Hashtbl.find_opt vvtbl n with
      | Some cur when cur >= v -> ()
      | _ -> Hashtbl.replace vvtbl n v)
    (Vv.to_list ver)

let vv_of_tbl vvtbl =
  Vv.of_list (Hashtbl.fold (fun n v acc -> (n, v) :: acc) vvtbl [])

(* Fold one locally-observed record: bump our G-counter component and
   stamp the entry with the next local sequence number. Replay at open
   re-walks segments in write order, so the same records always get the
   same sequence numbers back. *)
let fold_record ~rollups ~node ~vvtbl tbl (r : Record.t) =
  let seq = vv_next vvtbl node in
  let fp = Record.fingerprint r in
  match Hashtbl.find_opt tbl fp with
  | None ->
      let minutes, hours, days = fresh_rings () in
      if rollups then begin
        Rollup.add minutes r.ts;
        Rollup.add hours r.ts;
        Rollup.add days r.ts
      end;
      Hashtbl.add tbl fp
        (ref
           {
             Entry.fingerprint = fp;
             counts = Vv.set Vv.empty node 1;
             ver = Vv.set Vv.empty node seq;
             first_seen = r.ts;
             last_seen = r.ts;
             sample = r;
             minutes;
             hours;
             days;
             provenance = r.provenance;
           })
  | Some cell ->
      let e = !cell in
      if rollups then begin
        Rollup.add e.Entry.minutes r.ts;
        Rollup.add e.Entry.hours r.ts;
        Rollup.add e.Entry.days r.ts
      end;
      cell :=
        {
          e with
          Entry.counts = Vv.bump e.Entry.counts node;
          ver = Vv.set e.Entry.ver node seq;
          first_seen = min e.Entry.first_seen r.ts;
          last_seen = max e.Entry.last_seen r.ts;
          sample = (if r.ts < e.Entry.first_seen then r else e.Entry.sample);
          provenance = Provenance.join e.Entry.provenance r.provenance;
        }

(* Fold a replicated entry (an index row or a merged-entry frame):
   a pure lattice join, idempotent under replay. *)
let fold_entry ~vvtbl tbl (e : Entry.t) =
  vv_absorb vvtbl e.Entry.ver;
  match Hashtbl.find_opt tbl e.Entry.fingerprint with
  | None -> Hashtbl.add tbl e.Entry.fingerprint (ref (Entry.snapshot e))
  | Some cell -> cell := Entry.merge !cell e

let sort_entries es =
  List.sort
    (fun a b ->
      match Int.compare (Entry.count b) (Entry.count a) with
      | 0 -> Int64.compare a.Entry.fingerprint b.Entry.fingerprint
      | c -> c)
    es

(* --- framing ------------------------------------------------------- *)

(* Frame payloads are tagged:
     'R' record            one locally-observed record
     'B' session batch     nonce + all records of one session, atomic
     'M' merged entry      post-merge snapshot of a replicated entry (v2,
                           read-only legacy)
     'G' merge batch       all v2 entries changed by one [merge] (read-only
                           legacy, pre-provenance)
     'H' merge batch       all v3 (provenance-aware) entries changed by one
                           [merge], atomic — what [merge] writes today
   A batch ('B', 'G' or 'H') is a single checksummed frame so session
   publication and replica merges are all-or-nothing: a torn tail can
   never leave half a session behind the published-nonce marker it
   carries, nor a prefix of a merge behind a version vector that
   claims the whole delta. Untagged frames are pre-replication (v1)
   segments: a bare record payload, accepted for upgrade. *)

let max_frame_bytes = 1 lsl 28
let batch_chunk_records = 4096

let frame_of_payload payload =
  let b = Buffer.create (String.length payload + 8) in
  Codec.add_varint b (String.length payload);
  Buffer.add_string b payload;
  add_u32le b (crc32 payload 0 (String.length payload));
  Buffer.contents b

let frame_record r =
  let b = Buffer.create 256 in
  Buffer.add_char b 'R';
  Buffer.add_string b (Record.encode r);
  frame_of_payload (Buffer.contents b)

let frame_batch ~nonce records =
  let b = Buffer.create 1024 in
  Buffer.add_char b 'B';
  Codec.add_varint b (String.length nonce);
  Buffer.add_string b nonce;
  Codec.add_varint b (List.length records);
  List.iter
    (fun r ->
      let p = Record.encode r in
      Codec.add_varint b (String.length p);
      Buffer.add_string b p)
    records;
  frame_of_payload (Buffer.contents b)

(* 'M' single-entry and 'G' batch frames are only ever read these days
   (segments written before provenance); see [scan_segment]. *)
let frame_merge_batch es =
  let b = Buffer.create 4096 in
  Buffer.add_char b 'H';
  Codec.add_varint b (List.length es);
  List.iter (Entry.encode b) es;
  frame_of_payload (Buffer.contents b)

let decode_merge_batch ~entry_decode payload =
  (* the tag at payload.[0] was already consumed by the dispatcher *)
  let n, pos = Codec.get_varint payload 1 in
  if n < 0 || n > 1 lsl 24 then failwith "merge batch: bad entry count";
  let rec go acc n pos =
    if n = 0 then List.rev acc
    else
      let e, pos = entry_decode payload pos in
      go (e :: acc) (n - 1) pos
  in
  go [] n pos

let decode_batch payload =
  (* payload.[0] = 'B' already consumed by the dispatcher *)
  let n, pos = Codec.get_varint payload 1 in
  if n < 0 || n > Vv.node_max_bytes + 8 || pos + n > String.length payload then
    failwith "batch: bad nonce";
  let nonce = String.sub payload pos n in
  let k, pos = Codec.get_varint payload (pos + n) in
  if k < 0 || k > max_frame_bytes then failwith "batch: bad record count";
  let rec go acc k pos =
    if k = 0 then (nonce, List.rev acc)
    else
      let n, pos = Codec.get_varint payload pos in
      if n <= 0 || n > Record.max_bytes || pos + n > String.length payload then
        failwith "batch: bad record";
      match Record.decode (String.sub payload pos n) with
      | Error e -> failwith ("batch: " ^ e)
      | Ok r -> go (r :: acc) (k - 1) (pos + n)
  in
  go [] k pos

(* Scan a segment image: deliver every complete, checksummed, decodable
   frame; stop at the first damage. Returns the clean prefix length and
   how many delivered records lay beyond [committed]. *)
let scan_segment ~committed bytes ~record ~batch ~entry =
  let len = String.length bytes in
  let pos = ref 0 in
  let valid_end = ref 0 in
  let salvaged = ref 0 in
  let stop = ref false in
  while (not !stop) && !pos < len do
    match Codec.get_varint bytes !pos with
    | exception Failure _ -> stop := true
    | n, data_pos ->
        if n <= 0 || n > max_frame_bytes || data_pos + n + 4 > len then
          stop := true
        else
          let payload = String.sub bytes data_pos n in
          if get_u32le bytes (data_pos + n) <> crc32 payload 0 n then
            stop := true
          else begin
            let fin = data_pos + n + 4 in
            let deliver =
              match payload.[0] with
              | 'R' -> (
                  match Record.decode (String.sub payload 1 (n - 1)) with
                  | Error _ -> None
                  | Ok r -> Some (fun () -> record r; 1))
              | 'B' -> (
                  match decode_batch payload with
                  | exception Failure _ -> None
                  | nonce, rs -> Some (fun () -> batch ~nonce rs; List.length rs))
              | 'M' -> (
                  match Entry.decode_v2 payload 1 with
                  | exception Failure _ -> None
                  | e, _ -> Some (fun () -> entry e; 1))
              | 'G' -> (
                  match decode_merge_batch ~entry_decode:Entry.decode_v2 payload with
                  | exception Failure _ -> None
                  | es -> Some (fun () -> List.iter entry es; List.length es))
              | 'H' -> (
                  match decode_merge_batch ~entry_decode:Entry.decode payload with
                  | exception Failure _ -> None
                  | es -> Some (fun () -> List.iter entry es; List.length es))
              | _ -> None
            in
            (* no tag matched (or its decode failed): try the whole
               payload as a bare pre-replication (v1) record frame *)
            let deliver =
              match deliver with
              | Some _ -> deliver
              | None -> (
                  match Record.decode payload with
                  | Error _ -> None
                  | Ok r -> Some (fun () -> record r; 1))
            in
            match deliver with
            | None -> stop := true
            | Some f ->
                let delivered = f () in
                if fin > committed then salvaged := !salvaged + delivered;
                valid_end := fin;
                pos := fin
          end
  done;
  (!valid_end, !salvaged)

let read_marker dir id =
  match read_file (marker_path dir id) with
  | None -> 0
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n -> n | None -> 0)

(* --- index file ---------------------------------------------------- *)

let index_magic = "CRDX"
let index_version = 3

(* v1 (pre-replication) index body: watermark, then plain-count entries
   with no published-nonce set and no vectors. Migrate every entry onto
   [node] via {!Entry.decode_v1}, numbering vers in stored (fingerprint)
   order — each open of an unmigrated store reassigns identical vectors,
   and the first compaction rewrites the file as v2. *)
let decode_index_v1 ~node s =
  let node = if node = "" then "legacy" else node in
  let folded_up_to, pos = Codec.get_varint s 5 in
  let n, pos = Codec.get_varint s pos in
  if n < 0 || n > 1 lsl 24 then failwith "index: bad entry count";
  let rec go acc seq n pos =
    if n = 0 then List.rev acc
    else
      let e, pos = Entry.decode_v1 ~node ~seq s pos in
      go (e :: acc) (seq + 1) (n - 1) pos
  in
  (folded_up_to, [], go [] 1 n pos)

let encode_index ~folded_up_to ~published es =
  let body = Buffer.create 4096 in
  Codec.add_varint body folded_up_to;
  Codec.add_varint body (List.length published);
  List.iter
    (fun nonce ->
      Codec.add_varint body (String.length nonce);
      Buffer.add_string body nonce)
    (List.sort String.compare published);
  Codec.add_varint body (List.length es);
  List.iter
    (fun e -> Entry.encode body e)
    (List.sort
       (fun a b -> Int64.compare a.Entry.fingerprint b.Entry.fingerprint)
       es);
  let body = Buffer.contents body in
  let b = Buffer.create (String.length body + 16) in
  Buffer.add_string b index_magic;
  Buffer.add_char b (Char.chr index_version);
  Buffer.add_string b body;
  add_u32le b (crc32 body 0 (String.length body));
  Buffer.contents b

let decode_index ~node s =
  let len = String.length s in
  if len < 9 || String.sub s 0 4 <> index_magic then Error "index: bad magic"
  else
    let version = Char.code s.[4] in
    if version < 1 || version > index_version then Error "index: bad version"
    else if get_u32le s (len - 4) <> crc32 s 5 (len - 9) then
      Error "index: checksum mismatch"
    else if version = 1 then
      match decode_index_v1 ~node s with
      | exception Failure m -> Error m
      | v -> Ok v
    else
      (* v2 entries lack the provenance byte; everything a v2 store held
         was witnessed, so the migration is Entry.decode_v2 and the next
         compaction rewrites the file as v3. *)
      let entry_decode =
        if version = 2 then Entry.decode_v2 else Entry.decode
      in
      match
        let folded_up_to, pos = Codec.get_varint s 5 in
        let np, pos = Codec.get_varint s pos in
        if np < 0 || np > 1 lsl 24 then failwith "index: bad nonce count";
        let rec nonces acc np pos =
          if np = 0 then (List.rev acc, pos)
          else
            let n, pos = Codec.get_varint s pos in
            if n < 0 || n > Vv.node_max_bytes + 8 || pos + n > String.length s
            then failwith "index: bad nonce";
            nonces (String.sub s pos n :: acc) (np - 1) (pos + n)
        in
        let published, pos = nonces [] np pos in
        let n, pos = Codec.get_varint s pos in
        if n < 0 || n > 1 lsl 24 then failwith "index: bad entry count";
        let rec go acc n pos =
          if n = 0 then List.rev acc
          else
            let e, pos = entry_decode s pos in
            go (e :: acc) (n - 1) pos
        in
        (folded_up_to, published, go [] n pos)
      with
      | exception Failure m -> Error m
      | v -> Ok v

(* --- the writable handle ------------------------------------------- *)

type t = {
  dir : string;
  node : string;
  mu : Mutex.t;
  rollups : bool;
  segment_bytes : int;
  sync_every : int;
  auto_compact : int;
  tbl : (int64, Entry.t ref) Hashtbl.t;
  vvtbl : (string, int) Hashtbl.t;
  published : (string, unit) Hashtbl.t;
  mutable active_id : int;
  mutable fd : Unix.file_descr;
  mutable active_bytes : int;
  mutable committed : int;
  mutable dirty : int;
  mutable sealed : int;  (* live segments below the active one *)
  mutable folded_up_to : int;
  mutable salvaged : int;
  mutable truncated_bytes : int;
  mutable closed : bool;
  lock_fd : Unix.file_descr;
  lock_key : int * int;
}

let dir t = t.dir
let node_id t = t.node

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Shared by the writable open and the read-only [load].  [repair]
   truncates torn tails and retires segments the index already covers;
   the read-only path only observes. *)
let scan_store ~repair ~node dir =
  let tbl = Hashtbl.create 64 in
  let vvtbl = Hashtbl.create 8 in
  let published = Hashtbl.create 64 in
  let folded_up_to = ref 0 in
  let salvaged = ref 0 in
  let truncated = ref 0 in
  (match read_file (index_path dir) with
  | None -> ()
  | Some s -> (
      match decode_index ~node s with
      | Error e -> failwith (Printf.sprintf "%s: %s" (index_path dir) e)
      | Ok (f, nonces, es) ->
          folded_up_to := f;
          List.iter (fun n -> Hashtbl.replace published n ()) nonces;
          List.iter (fold_entry ~vvtbl tbl) es));
  if repair then unlink_quiet (index_path dir ^ ".tmp");
  let record = fold_record ~rollups:true ~node ~vvtbl tbl in
  let batch ~nonce rs =
    if nonce <> "" && Hashtbl.mem published nonce then ()
    else begin
      List.iter record rs;
      if nonce <> "" then Hashtbl.replace published nonce ()
    end
  in
  let entry = fold_entry ~vvtbl tbl in
  let live = ref [] in
  List.iter
    (fun id ->
      if id <= !folded_up_to then begin
        (* already in the index: leftover of a compaction that renamed
           but did not finish deleting before a crash *)
        if repair then begin
          unlink_quiet (seg_path dir id);
          unlink_quiet (marker_path dir id)
        end
      end
      else
        match read_file (seg_path dir id) with
        | None -> ()
        | Some bytes ->
            let committed = min (read_marker dir id) (String.length bytes) in
            let valid_end, salv =
              scan_segment ~committed bytes ~record ~batch ~entry
            in
            salvaged := !salvaged + salv;
            if valid_end < String.length bytes then begin
              truncated := !truncated + (String.length bytes - valid_end);
              if repair then begin
                let fd = Unix.openfile (seg_path dir id) [ Unix.O_WRONLY ] 0o644 in
                Fun.protect
                  ~finally:(fun () -> Unix.close fd)
                  (fun () ->
                    Unix.ftruncate fd valid_end;
                    Unix.fsync fd)
              end
            end;
            if repair && valid_end = 0 then begin
              unlink_quiet (seg_path dir id);
              unlink_quiet (marker_path dir id)
            end
            else begin
              if repair && valid_end <> committed then
                write_file_atomic ~dir (marker_path dir id)
                  (Printf.sprintf "%d\n" valid_end);
              live := (id, valid_end) :: !live
            end)
    (segment_ids dir);
  (tbl, vvtbl, published, !folded_up_to, List.rev !live, !salvaged, !truncated)

(* [lockf] record locks never conflict within one process, so the
   cross-process lock below is paired with a process-local registry
   keyed by the lock file's identity. *)
let local_locks : (int * int, unit) Hashtbl.t = Hashtbl.create 4
let local_locks_mu = Mutex.create ()

let open_db ?(segment_bytes = 1 lsl 20) ?(sync_every = 64) ?(auto_compact = 8)
    ?(rollups = true) dir =
  try
    mkdir_p dir;
    let lock_fd =
      Unix.openfile (lock_path dir) [ Unix.O_RDWR; Unix.O_CREAT ] 0o644
    in
    let st = Unix.fstat lock_fd in
    let lock_key = (st.Unix.st_dev, st.Unix.st_ino) in
    let locally_taken =
      Mutex.protect local_locks_mu (fun () ->
          if Hashtbl.mem local_locks lock_key then true
          else begin
            Hashtbl.add local_locks lock_key ();
            false
          end)
    in
    if locally_taken then begin
      Unix.close lock_fd;
      failwith (dir ^ ": race database locked by this process")
    end;
    let release_local () =
      Mutex.protect local_locks_mu (fun () ->
          Hashtbl.remove local_locks lock_key)
    in
    (match Unix.lockf lock_fd Unix.F_TLOCK 0 with
    | () -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
        release_local ();
        Unix.close lock_fd;
        failwith (dir ^ ": race database locked by another process"));
    let node =
      match read_node dir with
      | Some n -> n
      | None ->
          let n = gen_node_id () in
          write_file_atomic ~dir (node_path dir) (n ^ "\n");
          n
    in
    match scan_store ~repair:true ~node dir with
    | exception e ->
        release_local ();
        (try Unix.close lock_fd with Unix.Unix_error _ -> ());
        raise e
    | tbl, vvtbl, published, folded_up_to, live, salvaged, truncated ->
        Crd_obs.Counter.add m_salvaged salvaged;
        Crd_obs.Counter.add m_truncated truncated;
        let max_id =
          List.fold_left (fun acc (id, _) -> max acc id) folded_up_to live
        in
        let active_id = max_id + 1 in
        let fd =
          Unix.openfile (seg_path dir active_id)
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
            0o644
        in
        fsync_dir dir;
        Ok
          {
            dir;
            node;
            mu = Mutex.create ();
            rollups;
            segment_bytes = max 4096 segment_bytes;
            sync_every = max 1 sync_every;
            auto_compact;
            tbl;
            vvtbl;
            published;
            active_id;
            fd;
            active_bytes = 0;
            committed = 0;
            dirty = 0;
            sealed = List.length live;
            folded_up_to;
            salvaged;
            truncated_bytes = truncated;
            closed = false;
            lock_fd;
            lock_key;
          }
  with
  | Failure m -> Error m
  | Unix.Unix_error (e, fn, arg) ->
      Error (Printf.sprintf "%s: %s(%s)" (Unix.error_message e) fn arg)

let sync_locked t =
  if t.dirty > 0 || t.committed < t.active_bytes then begin
    Unix.fsync t.fd;
    write_file_atomic ~dir:t.dir
      (marker_path t.dir t.active_id)
      (Printf.sprintf "%d\n" t.active_bytes);
    t.committed <- t.active_bytes;
    t.dirty <- 0;
    Crd_obs.Counter.incr m_syncs
  end

let rotate_locked t =
  sync_locked t;
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  (* an empty sealed segment carries nothing: drop it *)
  if t.active_bytes = 0 then begin
    unlink_quiet (seg_path t.dir t.active_id);
    unlink_quiet (marker_path t.dir t.active_id)
  end
  else t.sealed <- t.sealed + 1;
  t.active_id <- t.active_id + 1;
  t.fd <-
    Unix.openfile (seg_path t.dir t.active_id)
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644;
  fsync_dir t.dir;
  t.active_bytes <- 0;
  t.committed <- 0;
  Crd_obs.Counter.incr m_rotations

let compact_locked t =
  Crd_obs.time h_compact @@ fun () ->
  rotate_locked t;
  let folded_up_to = t.active_id - 1 in
  let es = Hashtbl.fold (fun _ cell acc -> !cell :: acc) t.tbl [] in
  let published = Hashtbl.fold (fun n () acc -> n :: acc) t.published [] in
  let bytes = encode_index ~folded_up_to ~published es in
  let path = index_path t.dir in
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd bytes;
      Unix.fsync fd);
  (* the kill window the chaos soak aims at: tmp index written, nothing
     published — a crash (or injected abort) here must lose nothing *)
  Crd_fault.inject fp_compact;
  Unix.rename tmp path;
  fsync_dir t.dir;
  t.folded_up_to <- folded_up_to;
  t.sealed <- 0;
  List.iter
    (fun id ->
      if id <= folded_up_to then begin
        unlink_quiet (seg_path t.dir id);
        unlink_quiet (marker_path t.dir id)
      end)
    (segment_ids t.dir);
  fsync_dir t.dir;
  Crd_obs.Counter.incr m_compactions;
  List.length es

let compact_result t =
  match compact_locked t with
  | n -> Ok n
  | exception Crd_fault.Injected m ->
      Crd_obs.Counter.incr m_compact_failures;
      Error ("fault injected: " ^ m)
  | exception Unix.Unix_error (e, fn, arg) ->
      Crd_obs.Counter.incr m_compact_failures;
      Error (Printf.sprintf "%s: %s(%s)" (Unix.error_message e) fn arg)

let append_frame_locked t frame ~records =
  write_all t.fd frame;
  t.active_bytes <- t.active_bytes + String.length frame;
  t.dirty <- t.dirty + max 1 records;
  Crd_obs.Counter.add m_appends records;
  Crd_obs.Counter.add m_bytes (String.length frame);
  if t.dirty >= t.sync_every then sync_locked t;
  if t.active_bytes >= t.segment_bytes then begin
    rotate_locked t;
    if t.auto_compact > 0 && t.sealed >= t.auto_compact then
      (* auto-compaction failure must not fail the append that
         triggered it; the data is already durable in its segment *)
      ignore (compact_result t : (int, string) result)
  end

let append t r =
  Crd_obs.time h_append @@ fun () ->
  locked t @@ fun () ->
  if t.closed then invalid_arg "Crd_racedb.Db.append: closed";
  Crd_fault.inject fp_append;
  let frame = frame_record r in
  fold_record ~rollups:t.rollups ~node:t.node ~vvtbl:t.vvtbl t.tbl r;
  append_frame_locked t frame ~records:1

(* Chunk nonces are derived deterministically from the record order, so
   a crash replay re-publishing the same session computes the same
   chunk identities and the dedup holds chunk by chunk. *)
let chunk_nonces nonce records =
  let rec chunks acc i = function
    | [] -> List.rev acc
    | rs ->
        let rec take n acc rs =
          match (n, rs) with
          | 0, _ | _, [] -> (List.rev acc, rs)
          | n, r :: rs -> take (n - 1) (r :: acc) rs
        in
        let chunk, rest = take batch_chunk_records [] rs in
        let cn =
          if nonce = "" then ""
          else if i = 0 then nonce
          else Printf.sprintf "%s#%d" nonce i
        in
        chunks ((cn, chunk) :: acc) (i + 1) rest
  in
  chunks [] 0 records

let publish t ~nonce records =
  if records = [] then true
  else
    Crd_obs.time h_append @@ fun () ->
    locked t @@ fun () ->
    if t.closed then invalid_arg "Crd_racedb.Db.publish: closed";
    Crd_fault.inject fp_append;
    let wrote = ref false in
    List.iter
      (fun (cn, chunk) ->
        if cn <> "" && Hashtbl.mem t.published cn then
          Crd_obs.Counter.incr m_deduped
        else begin
          let frame = frame_batch ~nonce:cn chunk in
          List.iter
            (fold_record ~rollups:t.rollups ~node:t.node ~vvtbl:t.vvtbl t.tbl)
            chunk;
          if cn <> "" then Hashtbl.replace t.published cn ();
          append_frame_locked t frame ~records:(List.length chunk);
          wrote := true
        end)
      (chunk_nonces nonce records);
    !wrote

let published t nonce = locked t @@ fun () -> Hashtbl.mem t.published nonce

(* The apply is all-or-nothing: every change is staged off to the side,
   then written as ONE checksummed 'G' frame, because the version
   vector is the pointwise max over stored entry [ver]s — durably
   applying a prefix of the batch would advance it past entries never
   applied, and the peer's next [delta ~since] would skip them forever
   (the invariant crd_sync.mli's failure model leans on). A crash mid-
   write leaves a torn frame the next open discards whole; the fault
   point fires before anything is staged or written. Memory is mutated
   before the write so a compaction triggered by the append folds an
   index consistent with the segment it retires. *)
let merge t es =
  locked t @@ fun () ->
  if t.closed then invalid_arg "Crd_racedb.Db.merge: closed";
  Crd_fault.inject fp_append;
  let staged = Hashtbl.create 16 in
  List.iter
    (fun (e : Entry.t) ->
      let cur =
        match Hashtbl.find_opt staged e.Entry.fingerprint with
        | Some m -> Some m
        | None ->
            Option.map (fun c -> !c) (Hashtbl.find_opt t.tbl e.Entry.fingerprint)
      in
      match cur with
      | None -> Hashtbl.replace staged e.Entry.fingerprint (Entry.snapshot e)
      | Some cur ->
          let merged = Entry.merge cur e in
          if not (Entry.equal merged cur) then
            Hashtbl.replace staged e.Entry.fingerprint merged)
    es;
  let changed =
    Hashtbl.fold (fun _ m acc -> m :: acc) staged []
    |> List.sort (fun (a : Entry.t) b ->
           Int64.compare a.Entry.fingerprint b.Entry.fingerprint)
  in
  match changed with
  | [] -> 0
  | changed ->
      let frame = frame_merge_batch changed in
      if String.length frame > max_frame_bytes then
        failwith "racedb merge: batch exceeds the frame limit";
      List.iter
        (fun (m : Entry.t) ->
          vv_absorb t.vvtbl m.Entry.ver;
          Hashtbl.replace t.tbl m.Entry.fingerprint (ref m))
        changed;
      let n = List.length changed in
      append_frame_locked t frame ~records:n;
      Crd_obs.Counter.add m_merges n;
      sync_locked t;
      n

let version t = locked t @@ fun () -> vv_of_tbl t.vvtbl

let delta t ~since =
  locked t @@ fun () ->
  Hashtbl.fold
    (fun _ cell acc ->
      let e = !cell in
      if Vv.dominates since e.Entry.ver then acc else Entry.snapshot e :: acc)
    t.tbl []
  |> List.sort (fun a b -> Int64.compare a.Entry.fingerprint b.Entry.fingerprint)

let sync t = locked t @@ fun () -> sync_locked t
let compact t = locked t @@ fun () -> compact_result t

let entries t =
  locked t @@ fun () ->
  Hashtbl.fold (fun _ cell acc -> Entry.snapshot !cell :: acc) t.tbl []
  |> sort_entries

let du dir =
  List.fold_left
    (fun acc p -> match Unix.stat p with
      | { Unix.st_size; _ } -> acc + st_size
      | exception Unix.Unix_error _ -> acc)
    0
    (index_path dir :: List.map (seg_path dir) (segment_ids dir))

let stats_of tbl ~segments ~active_id ~folded_up_to ~data_bytes ~salvaged
    ~truncated_bytes =
  let total = Hashtbl.fold (fun _ cell acc -> acc + Entry.count !cell) tbl 0 in
  (* Predicted-only entries never inflate the witnessed distinct count:
     the headline number keeps meaning "races actually observed". *)
  let predicted =
    Hashtbl.fold
      (fun _ cell acc ->
        match (!cell).Entry.provenance with
        | Provenance.Predicted -> acc + 1
        | Provenance.Witnessed -> acc)
      tbl 0
  in
  {
    distinct = Hashtbl.length tbl - predicted;
    predicted;
    total;
    segments;
    active_id;
    folded_up_to;
    data_bytes;
    salvaged;
    truncated_bytes;
  }

let stats t =
  locked t @@ fun () ->
  stats_of t.tbl
    ~segments:(t.sealed + 1)
    ~active_id:t.active_id ~folded_up_to:t.folded_up_to ~data_bytes:(du t.dir)
    ~salvaged:t.salvaged ~truncated_bytes:t.truncated_bytes

let close t =
  locked t @@ fun () ->
  if not t.closed then begin
    t.closed <- true;
    sync_locked t;
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    if t.active_bytes = 0 then begin
      unlink_quiet (seg_path t.dir t.active_id);
      unlink_quiet (marker_path t.dir t.active_id)
    end;
    Mutex.protect local_locks_mu (fun () ->
        Hashtbl.remove local_locks t.lock_key);
    try Unix.close t.lock_fd with Unix.Unix_error _ -> ()
  end

type view = {
  v_entries : Entry.t list;
  v_stats : stats;
  v_node : string;
  v_version : Vv.t;
}

let load dir =
  if not (Sys.file_exists dir) then Error (dir ^ ": no such directory")
  else
    let node = match read_node dir with Some n -> n | None -> "" in
    match scan_store ~repair:false ~node dir with
    | exception Failure m -> Error m
    | exception Unix.Unix_error (e, fn, arg) ->
        Error (Printf.sprintf "%s: %s(%s)" (Unix.error_message e) fn arg)
    | tbl, vvtbl, _published, folded_up_to, live, salvaged, truncated_bytes ->
        let es =
          Hashtbl.fold (fun _ cell acc -> !cell :: acc) tbl [] |> sort_entries
        in
        let active_id =
          List.fold_left (fun acc (id, _) -> max acc id) folded_up_to live
        in
        Ok
          {
            v_entries = es;
            v_stats =
              stats_of tbl ~segments:(List.length live) ~active_id
                ~folded_up_to ~data_bytes:(du dir) ~salvaged ~truncated_bytes;
            v_node = node;
            v_version = vv_of_tbl vvtbl;
          }

let select ?top ?since ?obj ?spec ?provenance es =
  let keep (e : Entry.t) =
    (match since with None -> true | Some cut -> e.Entry.last_seen >= cut)
    && (match obj with
       | None -> true
       | Some o ->
           Crd_base.Obj_id.name e.Entry.sample.Record.report.Crd_detector.Report.obj
           = o)
    && (match spec with None -> true | Some s -> e.Entry.sample.Record.spec = s)
    && match provenance with
       | None -> true
       | Some p -> Provenance.equal e.Entry.provenance p
  in
  let es = List.filter keep es in
  match top with
  | None -> es
  | Some n -> List.filteri (fun i _ -> i < n) es

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>distinct: %d@,predicted: %d@,total: %d@,segments: %d (active \
     seg-%08d, folded up to %d)@,bytes: %d@,salvaged: %d@,truncated: %d@]"
    s.distinct s.predicted s.total s.segments s.active_id s.folded_up_to
    s.data_bytes s.salvaged s.truncated_bytes
