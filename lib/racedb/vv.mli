(** Version vectors over racedb node ids.

    A vector maps node ids to logical sequence numbers; components are
    strictly positive ([get] returns 0 for absent nodes) and the
    representation is a canonical sorted association list, so structural
    equality is semantic equality. [join] is the pointwise max — the
    same lattice join used for G-counter merge, which is why the type
    doubles as the per-node count map in {!Entry}. *)

type t = private (string * int) list

val empty : t
val get : t -> string -> int

val set : t -> string -> int -> t
(** Functional update. @raise Invalid_argument if the value is [<= 0]. *)

val bump : t -> string -> t
(** [set t node (get t node + 1)]. *)

val join : t -> t -> t
(** Pointwise max. Commutative, associative, idempotent. *)

val dominates : t -> t -> bool
(** [dominates a b] iff every component of [b] is [<=] in [a]. *)

val equal : t -> t -> bool
val to_list : t -> (string * int) list

val of_list : (string * int) list -> t
(** Canonicalize: sort, drop non-positive components, join duplicates. *)

val node_max_bytes : int
(** Longest node id [decode] accepts (64 bytes). *)

val encode : Buffer.t -> t -> unit

val decode : string -> int -> t * int
(** @raise Failure on malformed input. *)

val pp : t Fmt.t
