module Codec = Crd_wire.Codec

type t = {
  fingerprint : int64;
  counts : Vv.t;
  ver : Vv.t;
  first_seen : float;
  last_seen : float;
  sample : Record.t;
  minutes : Rollup.t;
  hours : Rollup.t;
  days : Rollup.t;
  provenance : Provenance.t;
}

let count e = List.fold_left (fun acc (_, c) -> acc + c) 0 (Vv.to_list e.counts)

let snapshot e =
  {
    e with
    minutes = Rollup.copy e.minutes;
    hours = Rollup.copy e.hours;
    days = Rollup.copy e.days;
  }

(* Earliest record wins; equal timestamps fall back to the smaller
   encoding, so concurrent replicas elect the same sample without
   coordination. *)
let pick_sample (a : Record.t) (b : Record.t) =
  if a.ts < b.ts then a
  else if b.ts < a.ts then b
  else if Record.equal a b then a
  else if Record.encode a <= Record.encode b then a
  else b

let merge a b =
  if a.fingerprint <> b.fingerprint then
    invalid_arg "Entry.merge: fingerprint mismatch";
  let minutes = Rollup.copy a.minutes in
  let hours = Rollup.copy a.hours in
  let days = Rollup.copy a.days in
  Rollup.join minutes b.minutes;
  Rollup.join hours b.hours;
  Rollup.join days b.days;
  {
    fingerprint = a.fingerprint;
    counts = Vv.join a.counts b.counts;
    ver = Vv.join a.ver b.ver;
    first_seen = min a.first_seen b.first_seen;
    last_seen = max a.last_seen b.last_seen;
    sample = pick_sample a.sample b.sample;
    minutes;
    hours;
    days;
    provenance = Provenance.join a.provenance b.provenance;
  }

let equal a b =
  a.fingerprint = b.fingerprint
  && Vv.equal a.counts b.counts
  && Vv.equal a.ver b.ver
  && a.first_seen = b.first_seen
  && a.last_seen = b.last_seen
  && Record.equal a.sample b.sample
  && Rollup.equal a.minutes b.minutes
  && Rollup.equal a.hours b.hours
  && Rollup.equal a.days b.days
  && Provenance.equal a.provenance b.provenance

let add_i64le b v =
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  done

let get_i64le s pos =
  if pos + 8 > String.length s then failwith "entry: truncated i64";
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[pos + i]))
  done;
  !v

(* The v3 (provenance-aware) entry is the v2 layout plus one trailing
   provenance byte. The container versions the format — index header
   byte, segment frame tag ('H' vs 'G'/'M'), sync hello version — so
   both decoders stay exact (entries are self-delimiting and cannot
   sniff their own tail). *)
let encode b (e : t) =
  add_i64le b e.fingerprint;
  Vv.encode b e.counts;
  Vv.encode b e.ver;
  add_i64le b (Int64.bits_of_float e.first_seen);
  add_i64le b (Int64.bits_of_float e.last_seen);
  Rollup.encode b e.minutes;
  Rollup.encode b e.hours;
  Rollup.encode b e.days;
  let sample = Record.encode e.sample in
  Codec.add_varint b (String.length sample);
  Buffer.add_string b sample;
  Buffer.add_char b
    (match e.provenance with
    | Provenance.Witnessed -> '\x00'
    | Provenance.Predicted -> '\x01')

let decode_body s pos =
  let fingerprint = get_i64le s pos in
  let pos = pos + 8 in
  let counts, pos = Vv.decode s pos in
  let ver, pos = Vv.decode s pos in
  let first_seen = Int64.float_of_bits (get_i64le s pos) in
  let last_seen = Int64.float_of_bits (get_i64le s (pos + 8)) in
  let pos = pos + 16 in
  let minutes, pos = Rollup.decode s pos in
  let hours, pos = Rollup.decode s pos in
  let days, pos = Rollup.decode s pos in
  let n, pos = Codec.get_varint s pos in
  if n < 0 || n > Record.max_bytes || pos + n > String.length s then
    failwith "entry: bad sample";
  let sample =
    match Record.decode (String.sub s pos n) with
    | Ok r -> r
    | Error e -> failwith ("entry: " ^ e)
  in
  ( { fingerprint;
      counts;
      ver;
      first_seen;
      last_seen;
      sample;
      minutes;
      hours;
      days;
      provenance = Provenance.Witnessed;
    },
    pos + n )

let decode s pos =
  let e, pos = decode_body s pos in
  if pos >= String.length s then failwith "entry: missing provenance";
  let provenance =
    match s.[pos] with
    | '\x00' -> Provenance.Witnessed
    | '\x01' -> Provenance.Predicted
    | _ -> failwith "entry: bad provenance"
  in
  ({ e with provenance }, pos + 1)

(* Pre-prediction (index v2, 'M'/'G' frames, sync v1) entries carry no
   provenance byte: everything stored then was witnessed. *)
let decode_v2 = decode_body

(* Pre-replication (index v1) entries carry a plain integer count and
   no vectors; migrate both onto [node]'s components — the count as its
   G-counter value, [seq] as its version — so an upgraded store gossips
   its history as if this node had observed it all along. *)
let decode_v1 ~node ~seq s pos =
  let fingerprint = get_i64le s pos in
  let pos = pos + 8 in
  let count, pos = Codec.get_varint s pos in
  if count <= 0 then failwith "entry: bad v1 count";
  let first_seen = Int64.float_of_bits (get_i64le s pos) in
  let last_seen = Int64.float_of_bits (get_i64le s (pos + 8)) in
  let pos = pos + 16 in
  let minutes, pos = Rollup.decode s pos in
  let hours, pos = Rollup.decode s pos in
  let days, pos = Rollup.decode s pos in
  let n, pos = Codec.get_varint s pos in
  if n < 0 || n > Record.max_bytes || pos + n > String.length s then
    failwith "entry: bad sample";
  let sample =
    match Record.decode (String.sub s pos n) with
    | Ok r -> r
    | Error e -> failwith ("entry: " ^ e)
  in
  ( {
      fingerprint;
      counts = Vv.set Vv.empty node count;
      ver = Vv.set Vv.empty node seq;
      first_seen;
      last_seen;
      sample;
      minutes;
      hours;
      days;
      provenance = Provenance.Witnessed;
    },
    pos + n )

let pp ppf e =
  Fmt.pf ppf "%016Lx n=%d prov=%a counts=%a ver=%a" e.fingerprint (count e)
    Provenance.pp e.provenance Vv.pp e.counts Vv.pp e.ver
