type t = Predicted | Witnessed

let join a b =
  match (a, b) with Witnessed, _ | _, Witnessed -> Witnessed | _ -> Predicted

let equal (a : t) b = a = b
let compare (a : t) b = compare a b
let to_string = function Predicted -> "predicted" | Witnessed -> "witnessed"

let of_string = function
  | "predicted" -> Some Predicted
  | "witnessed" -> Some Witnessed
  | _ -> None

let pp ppf t = Fmt.string ppf (to_string t)
