(** [Crd_wire.Bigcodec] — the zero-copy CRDW decoder.

    Same wire grammar, same typed {!Codec.error}s and the same
    observable semantics as {!Codec.Decoder} (which remains the
    reference oracle, differential-tested against this module), but
    decoding in place over [Bigarray] slices:

    - frames are [(pos, limit)] windows — no per-frame [Buffer.sub] or
      per-string [String.sub];
    - interned strings materialize once per distinct content: a
      definition's slice is hashed and compared in place against the
      intern pool before any allocation;
    - a feed that arrives with an empty pending buffer parses the
      caller's slice directly and copies only the incomplete tail.

    Encoding stays in {!Codec.Encoder}; this module is read-side only.
    Metrics ([wire_rx_bytes_total], [wire_frames_total],
    [wire_decode_errors_total], [wire_resync_total]) and the
    [decode_frame] fault point are shared with the legacy decoder. *)

open Crd_trace

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

val create_bigstring : int -> bigstring
val bigstring_of_string : string -> bigstring

val bigstring_to_string : bigstring -> int -> int -> string
(** [bigstring_to_string b off len] copies the slice out. *)

val map_file : string -> (bigstring, string) result
(** Read-only [Unix.map_file] of a whole file ([Error _] for files that
    cannot be mapped — pipes, oversized, unreadable). An empty file maps
    to an empty bigstring without touching [mmap]. The mapping is
    released when the bigstring is collected. *)

module Decoder : sig
  type t

  val create : ?resync:bool -> unit -> t
  (** Same contract as {!Codec.Decoder.create}, including resync
      scanning semantics and sticky errors. *)

  val feed :
    t -> ?off:int -> ?len:int -> bigstring -> (Event.t list, Codec.error) result
  (** Zero-copy feed: when nothing is pending, frames decode straight
      from the caller's slice; only an incomplete tail is buffered. The
      slice may be reused or unmapped as soon as the call returns. *)

  val feed_bytes :
    t -> ?off:int -> ?len:int -> Bytes.t -> (Event.t list, Codec.error) result
  (** One copy (into the pending bigstring) — for callers whose bytes
      come from [Unix.read]. No per-call string allocation. *)

  val feed_iter :
    t ->
    ?off:int ->
    ?len:int ->
    bigstring ->
    f:(Event.t -> unit) ->
    (unit, Codec.error) result
  (** Push-based [feed]: each event goes to [f] as soon as its frame
      parses, with no intermediate list — in a streaming consumer the
      events die in the minor heap instead of being promoted. An
      exception raised by [f] propagates to the caller unchanged (the
      decoder is not poisoned, but delivery of the interrupted feed is
      unspecified — abort the session). *)

  val feed_bytes_iter :
    t ->
    ?off:int ->
    ?len:int ->
    Bytes.t ->
    f:(Event.t -> unit) ->
    (unit, Codec.error) result
  (** Push-based {!feed_bytes}; same contract as {!feed_iter}. *)

  val feed_string :
    t -> ?off:int -> ?len:int -> string -> (Event.t list, Codec.error) result

  val finished : t -> bool
  val finish : t -> (unit, Codec.error) result

  val release : t -> unit
  (** Return the decoder's charge against the process-wide
      [mem_intern_bytes] gauge (pending buffer, intern pool, ref
      tables — the memory-accounting input of the server's overload
      controller). Idempotent; the decoder remains usable but stops
      accounting. Decoders dropped without [release] are reclaimed by
      a GC-finalizer backstop, but long-lived servers should release
      eagerly so the load signal tracks live sessions, not the GC. *)

  val mem : t -> int
  (** Current accounted bytes (0 after {!release}). Approximate —
      table capacities and intern content, not a malloc census. *)
end

(** {1 Whole-value convenience} *)

val decode_bigstring : ?resync:bool -> bigstring -> (Trace.t, Codec.error) result
val decode_string : ?resync:bool -> string -> (Trace.t, Codec.error) result

val iter_bigstring :
  ?resync:bool -> bigstring -> f:(Event.t -> unit) -> (unit, Codec.error) result

val iter_file :
  ?resync:bool -> string -> f:(Event.t -> unit) -> (unit, string) result
(** mmap + decode in place; falls back to the streaming channel path for
    files that refuse to map, so pipes and special files keep working. *)

val of_file : ?resync:bool -> string -> (Trace.t, string) result
