(** [Crd_wire.Codec] — the compact binary trace format.

    A wire stream is a 5-byte header (magic ["CRDW"], version byte)
    followed by length-framed chunks, terminated by a zero-length frame:

    {v
    stream  ::= "CRDW" version frame* end
    frame   ::= varint(len>0) byte{len}
    end     ::= varint(0)
    v}

    Frame payloads hold a sequence of records: string/object/lock
    interning definitions and events. Every name (object, lock, method,
    field, global, string value) is written once into a shared string
    table and referenced by varint index afterwards, so long traces over
    few objects cost a handful of bytes per event. Object and lock
    definitions carry the original numeric identity, so decoding
    reproduces the input trace up to structural equality ({!Event.equal}
    holds event-for-event; objects that share an id keep the first
    recorded name).

    The encoder is incremental (events are appended to the current
    chunk, flushed at a byte threshold) and the decoder is push-based:
    feed it arbitrary byte slices and it returns the events completed so
    far. Both run in O(chunk + intern tables) memory, never in O(trace).

    The decoder is {e total}: on any input — truncated, corrupt, or
    adversarial — it returns a typed {!error} and never raises. *)

open Crd_trace

val version : int
(** Wire format version written by this encoder (currently 1). *)

(** {1 SYNC frames}

    The racedb replication protocol ({!Crd_sync}) reuses the CRDW
    varint framing after its own magic: a connection opens with
    ["CRDY" version] and then exchanges [varint(len) payload] frames
    whose payloads begin with one of the kind bytes below. *)

val sync_magic : string
(** ["CRDY"]. *)

val sync_version : int
(** Sync protocol version (currently 2: delta entries carry the
    provenance byte). *)

val sync_hello : int
(** Frame kind: node id + version vector, opens both directions. *)

val sync_delta : int
(** Frame kind: a batch of replicated racedb entries. *)

val sync_ack : int
(** Frame kind: end of a delta stream — version vector + merged count. *)

val sync_error : int
(** Frame kind: human-readable refusal, connection closes after. *)

(** {1 Errors} *)

type error =
  | Bad_magic  (** input does not start with the ["CRDW"] magic *)
  | Unsupported_version of int
  | Truncated  (** input ended before the end-of-stream marker *)
  | Corrupt of string  (** malformed record, reference, or framing *)

val pp_error : error Fmt.t
val error_to_string : error -> string

(** {1 Incremental encoding} *)

module Encoder : sig
  type t

  val create : ?chunk_bytes:int -> emit:(string -> unit) -> unit -> t
  (** [create ~emit ()] writes the stream header immediately and then
      calls [emit] once per flushed frame. [chunk_bytes] (default 32768)
      is the flush threshold; a frame may exceed it by one record. *)

  val event : t -> Event.t -> unit
  (** Append one event (and any interning definitions it needs) to the
      current chunk, flushing first if the chunk is full.
      @raise Invalid_argument if the encoder is closed. *)

  val flush : t -> unit
  (** Emit the current chunk (if non-empty) as a frame. *)

  val close : t -> unit
  (** Flush, then emit the end-of-stream marker. Idempotent. *)
end

(** {1 Incremental decoding} *)

module Decoder : sig
  type t

  val create : ?resync:bool -> unit -> t
  (** [resync] (default [false]) turns mid-stream corruption from a
      fatal error into a scan: the decoder discards the partial effects
      of the bad frame (events and interning definitions), skips one
      byte, and retries until it finds the next parseable frame
      boundary. Each skipped byte increments [wire_resync_total]. The
      scan is best-effort — recovered output is a subset of the
      original events — but the decoder stays total and deterministic,
      and an uncorrupted stream decodes identically with zero resyncs.
      Header errors and data after the end marker remain fatal. *)

  val feed : t -> ?off:int -> ?len:int -> string -> (Event.t list, error) result
  (** [feed t s] consumes the next slice of the stream and returns the
      events completed by it, in trace order. Errors are sticky: after
      an [Error _], every further call returns the same error. Input
      past the end-of-stream marker is [Corrupt]. *)

  val finished : t -> bool
  (** The end-of-stream marker has been consumed. *)

  val finish : t -> (unit, error) result
  (** Declare end of input: [Ok ()] iff the stream was complete
      (header, frames, end marker); [Error Truncated] otherwise. *)
end

(** {1 Whole-value convenience} *)

val encode_trace : ?chunk_bytes:int -> Trace.t -> string
val decode_string : ?resync:bool -> string -> (Trace.t, error) result

val write_channel : out_channel -> Trace.t -> unit
val to_file : string -> Trace.t -> (unit, string) result

val iter_channel : in_channel -> f:(Event.t -> unit) -> (unit, error) result
(** Stream-decode a channel with a fixed 64 KiB read buffer, calling
    [f] on each event as soon as its frame is complete. *)

val of_channel : in_channel -> (Trace.t, error) result
val of_file : string -> (Trace.t, string) result

(** {1 Wire helpers} (shared with the server handshake) *)

val add_varint : Buffer.t -> int -> unit
(** LEB128 on OCaml's 63-bit ints (at most 9 bytes). *)

val get_varint : string -> int -> int * int
(** [get_varint s pos] reads one {!add_varint} encoding starting at
    [pos] and returns [(value, next_pos)].
    @raise Failure on truncated or over-long input. *)

val zigzag : int -> int
(** Signed→unsigned bijection on the 63-bit patterns; small negatives
    stay small on the wire. *)

val unzigzag : int -> int
(** Inverse of {!zigzag}. *)

val magic : string
(** ["CRDW"]. *)

val default_chunk_bytes : int
val max_frame_bytes : int

(** {1 Record tags} (shared with {!Bigcodec}, the zero-copy decoder)

    One byte each. [0x01]-[0x03] are interning definitions; [0x10]+ are
    events; locations and values carry their own sub-tag byte. *)

val tag_str_def : int
val tag_obj_def : int
val tag_lock_def : int
val tag_call : int
val tag_read : int
val tag_write : int
val tag_fork : int
val tag_join : int
val tag_acquire : int
val tag_release : int
val tag_begin : int
val tag_end : int
val loc_global : int
val loc_field : int
val loc_slot : int
val val_nil : int
val val_false : int
val val_true : int
val val_int : int
val val_str : int
val val_ref : int

(** {1 Shared decoder plumbing}

    Both decoders report into the same metrics and consult the same
    [decode_frame] fault point, so dashboards and chaos specs do not
    care which decoder a path uses. *)

val rx_bytes_total : Crd_obs.Counter.t
val frames_total : Crd_obs.Counter.t
val decode_errors_total : Crd_obs.Counter.t
val resync_total : Crd_obs.Counter.t
val fp_decode_frame : Crd_fault.point
