open Crd_base
open Crd_trace

let version = 1
let magic = "CRDW"

(* SYNC: the racedb replication exchange rides the same varint framing
   (varint(len) payload) after its own magic; payloads open with a
   frame-kind byte. Crd_sync owns the payload encodings. *)
let sync_magic = "CRDY"
let sync_version = 2
let sync_hello = 1
let sync_delta = 2
let sync_ack = 3
let sync_error = 4
let default_chunk_bytes = 32768

(* A frame longer than this is rejected rather than buffered: one
   corrupt varint must not make the decoder allocate unboundedly. *)
let max_frame_bytes = 1 lsl 24

type error =
  | Bad_magic
  | Unsupported_version of int
  | Truncated
  | Corrupt of string

(* Process-wide codec metrics: byte counters on the chunk granularity
   (one atomic add per feed/emit, never per event). *)
let tx_bytes_total =
  Crd_obs.counter ~help:"Bytes emitted by CRDW encoders" "wire_tx_bytes_total"

let rx_bytes_total =
  Crd_obs.counter ~help:"Bytes fed into CRDW decoders" "wire_rx_bytes_total"

let frames_total =
  Crd_obs.counter ~help:"CRDW frames decoded" "wire_frames_total"

let decode_errors_total =
  Crd_obs.counter ~help:"CRDW decoders entering the failed state"
    "wire_decode_errors_total"

let resync_total =
  Crd_obs.counter ~help:"Bytes skipped by resyncing CRDW decoders"
    "wire_resync_total"

(* Deterministic corruption for chaos runs: when armed, a frame parse
   fails as if the frame arrived corrupt. *)
let fp_decode_frame = Crd_fault.point "decode_frame"

let pp_error ppf = function
  | Bad_magic -> Fmt.string ppf "bad magic (not a CRDW stream)"
  | Unsupported_version v -> Fmt.pf ppf "unsupported wire version %d" v
  | Truncated -> Fmt.string ppf "truncated stream"
  | Corrupt msg -> Fmt.pf ppf "corrupt stream: %s" msg

let error_to_string e = Fmt.str "%a" pp_error e

(* ------------------------------------------------------------------ *)
(* Primitives                                                          *)
(* ------------------------------------------------------------------ *)

(* LEB128 over the unsigned bit pattern of an OCaml int: [lsr] makes the
   loop terminate after at most 9 bytes (63 bits / 7). *)
let add_varint b n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let low = !n land 0x7f in
    let rest = !n lsr 7 in
    if rest = 0 then begin
      Buffer.add_char b (Char.chr low);
      continue := false
    end
    else begin
      Buffer.add_char b (Char.chr (low lor 0x80));
      n := rest
    end
  done

(* Zigzag so small negative ints stay small on the wire; a bijection on
   the 63-bit patterns, so every int round-trips. *)
let zigzag i = (i lsl 1) lxor (i asr 62)
let unzigzag u = (u lsr 1) lxor (- (u land 1))
let add_zigzag b i = add_varint b (zigzag i)

(* String-based reader for consumers that frame their own storage (the
   racedb segment files); the stream decoder below keeps its own copy
   operating on the reader record. *)
let get_varint s pos =
  let len = String.length s in
  let rec go acc shift pos =
    if pos >= len then failwith "varint: truncated"
    else if shift > 56 then failwith "varint: overflow"
    else
      let c = Char.code (String.unsafe_get s pos) in
      let acc = acc lor ((c land 0x7f) lsl shift) in
      if c land 0x80 = 0 then (acc, pos + 1) else go acc (shift + 7) (pos + 1)
  in
  go 0 0 pos

(* Record tags. *)
let tag_str_def = 0x01
let tag_obj_def = 0x02
let tag_lock_def = 0x03
let tag_call = 0x10
let tag_read = 0x11
let tag_write = 0x12
let tag_fork = 0x13
let tag_join = 0x14
let tag_acquire = 0x15
let tag_release = 0x16
let tag_begin = 0x17
let tag_end = 0x18

(* Location and value sub-tags. *)
let loc_global = 0x00
let loc_field = 0x01
let loc_slot = 0x02
let val_nil = 0x00
let val_false = 0x01
let val_true = 0x02
let val_int = 0x03
let val_str = 0x04
let val_ref = 0x05

(* ------------------------------------------------------------------ *)
(* Encoder                                                             *)
(* ------------------------------------------------------------------ *)

module Encoder = struct
  type t = {
    emit : string -> unit;
    chunk_bytes : int;
    chunk : Buffer.t;
    payload : Buffer.t;
        (* per-event scratch: interning definitions go straight into
           [chunk], the event record is assembled here and appended
           after them, so definitions always precede first use. *)
    strings : (string, int) Hashtbl.t;
    mutable next_string : int;
    objs : (int, unit) Hashtbl.t;
    locks : (int, unit) Hashtbl.t;
    mutable closed : bool;
  }

  let create ?(chunk_bytes = default_chunk_bytes) ~emit () =
    let emit s =
      Crd_obs.Counter.add tx_bytes_total (String.length s);
      emit s
    in
    let b = Buffer.create 8 in
    Buffer.add_string b magic;
    Buffer.add_char b (Char.chr version);
    emit (Buffer.contents b);
    {
      emit;
      chunk_bytes = max 64 chunk_bytes;
      chunk = Buffer.create (max 64 chunk_bytes);
      payload = Buffer.create 64;
      strings = Hashtbl.create 64;
      next_string = 0;
      objs = Hashtbl.create 64;
      locks = Hashtbl.create 16;
      closed = false;
    }

  let flush t =
    if Buffer.length t.chunk > 0 then begin
      let header = Buffer.create 10 in
      add_varint header (Buffer.length t.chunk);
      t.emit (Buffer.contents header);
      t.emit (Buffer.contents t.chunk);
      Buffer.clear t.chunk
    end

  let close t =
    if not t.closed then begin
      flush t;
      t.emit "\x00";
      t.closed <- true
    end

  let str_ref t s =
    match Hashtbl.find_opt t.strings s with
    | Some id -> id
    | None ->
        let id = t.next_string in
        t.next_string <- id + 1;
        Hashtbl.add t.strings s id;
        Buffer.add_char t.chunk (Char.chr tag_str_def);
        add_varint t.chunk (String.length s);
        Buffer.add_string t.chunk s;
        id

  let obj_ref t (o : Obj_id.t) =
    let id = Obj_id.id o in
    if not (Hashtbl.mem t.objs id) then begin
      let name = str_ref t (Obj_id.name o) in
      Hashtbl.add t.objs id ();
      Buffer.add_char t.chunk (Char.chr tag_obj_def);
      add_zigzag t.chunk id;
      add_varint t.chunk name
    end;
    id

  let lock_ref t (l : Lock_id.t) =
    let id = Lock_id.id l in
    if not (Hashtbl.mem t.locks id) then begin
      let name = str_ref t (Lock_id.name l) in
      Hashtbl.add t.locks id ();
      Buffer.add_char t.chunk (Char.chr tag_lock_def);
      add_zigzag t.chunk id;
      add_varint t.chunk name
    end;
    id

  (* The [add_*] helpers below write the event record into [t.payload]
     while any fresh interning definitions land in [t.chunk]. *)

  let add_value t (v : Value.t) =
    let p = t.payload in
    match v with
    | Value.Nil -> Buffer.add_char p (Char.chr val_nil)
    | Value.Bool false -> Buffer.add_char p (Char.chr val_false)
    | Value.Bool true -> Buffer.add_char p (Char.chr val_true)
    | Value.Int i ->
        Buffer.add_char p (Char.chr val_int);
        add_zigzag p i
    | Value.Str s ->
        let id = str_ref t s in
        Buffer.add_char p (Char.chr val_str);
        add_varint p id
    | Value.Ref r ->
        Buffer.add_char p (Char.chr val_ref);
        add_zigzag p r

  let add_values t vs =
    add_varint t.payload (List.length vs);
    List.iter (add_value t) vs

  let add_loc t (l : Mem_loc.t) =
    let p = t.payload in
    match l with
    | Mem_loc.Global g ->
        let g = str_ref t g in
        Buffer.add_char p (Char.chr loc_global);
        add_varint p g
    | Mem_loc.Field (o, f) ->
        let oid = obj_ref t o in
        let f = str_ref t f in
        Buffer.add_char p (Char.chr loc_field);
        add_zigzag p oid;
        add_varint p f
    | Mem_loc.Slot (o, f, v) ->
        let oid = obj_ref t o in
        let f = str_ref t f in
        Buffer.add_char p (Char.chr loc_slot);
        add_zigzag p oid;
        add_varint p f;
        add_value t v

  let event t (e : Event.t) =
    if t.closed then invalid_arg "Codec.Encoder.event: encoder is closed";
    if Buffer.length t.chunk >= t.chunk_bytes then flush t;
    let p = t.payload in
    Buffer.clear p;
    let tid = Tid.to_int e.tid in
    let tag op =
      Buffer.add_char p (Char.chr op);
      add_varint p tid
    in
    (match e.op with
    | Event.Call a ->
        let oid = obj_ref t a.Action.obj in
        let meth = str_ref t a.Action.meth in
        tag tag_call;
        add_zigzag p oid;
        add_varint p meth;
        add_values t a.Action.args;
        add_values t a.Action.rets
    | Event.Read l ->
        tag tag_read;
        add_loc t l
    | Event.Write l ->
        tag tag_write;
        add_loc t l
    | Event.Fork u ->
        tag tag_fork;
        add_varint p (Tid.to_int u)
    | Event.Join u ->
        tag tag_join;
        add_varint p (Tid.to_int u)
    | Event.Acquire l ->
        let lid = lock_ref t l in
        tag tag_acquire;
        add_zigzag p lid
    | Event.Release l ->
        let lid = lock_ref t l in
        tag tag_release;
        add_zigzag p lid
    | Event.Begin -> tag tag_begin
    | Event.End -> tag tag_end);
    Buffer.add_buffer t.chunk p
end

(* Caution: [add_loc]/[add_value] intern into [chunk] while the event
   body goes to [payload]; for [Read]/[Write] the loc sub-record is
   assembled after the tag, so the definitions still precede the whole
   event record in the chunk. *)

(* ------------------------------------------------------------------ *)
(* Decoder                                                             *)
(* ------------------------------------------------------------------ *)

module Decoder = struct
  exception Fail of error

  let fail e = raise (Fail e)
  let corrupt fmt = Fmt.kstr (fun s -> fail (Corrupt s)) fmt

  type state = Header | Frames | Finished | Failed of error

  type t = {
    mutable state : state;
    resync : bool;  (* scan past corrupt regions instead of failing *)
    buf : Buffer.t;  (* unconsumed input *)
    mutable pos : int;  (* consumed prefix of [buf] *)
    mutable strings : (int, string) Hashtbl.t;
    mutable next_string : int;
    mutable objs : (int, Obj_id.t) Hashtbl.t;
    mutable locks : (int, Lock_id.t) Hashtbl.t;
  }

  let create ?(resync = false) () =
    {
      state = Header;
      resync;
      buf = Buffer.create 4096;
      pos = 0;
      strings = Hashtbl.create 64;
      next_string = 0;
      objs = Hashtbl.create 64;
      locks = Hashtbl.create 16;
    }

  let finished t = t.state = Finished

  (* --- frame-payload reader: overrun here means corruption, because
     the frame header promised [limit - pos] bytes. ------------------ *)

  type reader = { frame : string; mutable rpos : int; rlimit : int }

  let r_byte r =
    if r.rpos >= r.rlimit then corrupt "record overruns its frame";
    let c = Char.code r.frame.[r.rpos] in
    r.rpos <- r.rpos + 1;
    c

  let r_varint r =
    let acc = ref 0 in
    let shift = ref 0 in
    let continue = ref true in
    while !continue do
      let b = r_byte r in
      acc := !acc lor ((b land 0x7f) lsl !shift);
      if b < 0x80 then continue := false
      else begin
        shift := !shift + 7;
        if !shift > 56 then corrupt "varint longer than 9 bytes"
      end
    done;
    !acc

  let r_zigzag r = unzigzag (r_varint r)

  let r_string_def t r =
    let len = r_varint r in
    if len < 0 || len > r.rlimit - r.rpos then
      corrupt "string definition overruns its frame";
    let s = String.sub r.frame r.rpos len in
    r.rpos <- r.rpos + len;
    Hashtbl.add t.strings t.next_string s;
    t.next_string <- t.next_string + 1

  let r_str_ref t r =
    let id = r_varint r in
    match Hashtbl.find_opt t.strings id with
    | Some s -> s
    | None -> corrupt "reference to undefined string %d" id

  let r_obj_ref t r =
    let id = r_zigzag r in
    match Hashtbl.find_opt t.objs id with
    | Some o -> o
    | None -> corrupt "reference to undefined object %d" id

  let r_lock_ref t r =
    let id = r_zigzag r in
    match Hashtbl.find_opt t.locks id with
    | Some l -> l
    | None -> corrupt "reference to undefined lock %d" id

  let r_tid r =
    let v = r_varint r in
    if v < 0 then corrupt "negative thread id";
    Tid.of_int v

  let r_value t r =
    let tag = r_byte r in
    if tag = val_nil then Value.Nil
    else if tag = val_false then Value.Bool false
    else if tag = val_true then Value.Bool true
    else if tag = val_int then Value.Int (r_zigzag r)
    else if tag = val_str then Value.Str (r_str_ref t r)
    else if tag = val_ref then Value.Ref (r_zigzag r)
    else corrupt "unknown value tag 0x%02x" tag

  let r_values t r =
    let n = r_varint r in
    if n < 0 || n > r.rlimit - r.rpos then
      corrupt "value list longer than its frame";
    List.init n (fun _ -> r_value t r)

  let r_loc t r =
    let tag = r_byte r in
    if tag = loc_global then Mem_loc.Global (r_str_ref t r)
    else if tag = loc_field then
      let o = r_obj_ref t r in
      Mem_loc.Field (o, r_str_ref t r)
    else if tag = loc_slot then
      let o = r_obj_ref t r in
      let f = r_str_ref t r in
      Mem_loc.Slot (o, f, r_value t r)
    else corrupt "unknown location tag 0x%02x" tag

  (* One frame payload: interning definitions and events, in order. *)
  let r_frame t r push =
    while r.rpos < r.rlimit do
      let tag = r_byte r in
      if tag = tag_str_def then r_string_def t r
      else if tag = tag_obj_def then begin
        let id = r_zigzag r in
        let name = r_str_ref t r in
        if Hashtbl.mem t.objs id then corrupt "duplicate object %d" id;
        Hashtbl.add t.objs id (Obj_id.make ~name id)
      end
      else if tag = tag_lock_def then begin
        let id = r_zigzag r in
        let name = r_str_ref t r in
        if Hashtbl.mem t.locks id then corrupt "duplicate lock %d" id;
        Hashtbl.add t.locks id (Lock_id.make ~name id)
      end
      else begin
        let tid = r_tid r in
        let op =
          if tag = tag_call then begin
            let obj = r_obj_ref t r in
            let meth = r_str_ref t r in
            let args = r_values t r in
            let rets = r_values t r in
            Event.Call (Action.make ~obj ~meth ~args ~rets ())
          end
          else if tag = tag_read then Event.Read (r_loc t r)
          else if tag = tag_write then Event.Write (r_loc t r)
          else if tag = tag_fork then Event.Fork (r_tid r)
          else if tag = tag_join then Event.Join (r_tid r)
          else if tag = tag_acquire then Event.Acquire (r_lock_ref t r)
          else if tag = tag_release then Event.Release (r_lock_ref t r)
          else if tag = tag_begin then Event.Begin
          else if tag = tag_end then Event.End
          else corrupt "unknown record tag 0x%02x" tag
        in
        push { Event.tid; op }
      end
    done

  (* --- framing layer over the pending buffer ----------------------- *)

  let available t = Buffer.length t.buf - t.pos
  let peek t i = Buffer.nth t.buf (t.pos + i)

  (* Frame-header varint from the pending buffer: [None] means the
     varint itself is still incomplete (wait for more input). *)
  let try_varint t =
    let n = available t in
    let acc = ref 0 in
    let shift = ref 0 in
    let i = ref 0 in
    let result = ref None in
    (try
       while !result = None do
         if !i >= n then raise Exit;
         let b = Char.code (peek t !i) in
         incr i;
         acc := !acc lor ((b land 0x7f) lsl !shift);
         if b < 0x80 then result := Some (!acc, !i)
         else begin
           shift := !shift + 7;
           if !shift > 56 then corrupt "frame length varint longer than 9 bytes"
         end
       done
     with Exit -> ());
    !result

  let compact t =
    if t.pos > 65536 && t.pos * 2 > Buffer.length t.buf then begin
      let rest = Buffer.sub t.buf t.pos (available t) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest;
      t.pos <- 0
    end

  let check_header t =
    (* Report a magic mismatch as soon as the prefix diverges, even on
       short input. *)
    let n = min (available t) (String.length magic) in
    for i = 0 to n - 1 do
      if peek t i <> magic.[i] then fail Bad_magic
    done;
    if available t >= String.length magic + 1 then begin
      let v = Char.code (peek t (String.length magic)) in
      if v <> version then fail (Unsupported_version v);
      t.pos <- t.pos + String.length magic + 1;
      t.state <- Frames
    end

  (* Parse one frame payload. In resync mode the intern tables are
     snapshotted first and restored on failure, so a corrupt frame
     cannot poison the references of the frames that follow it. *)
  let parse_frame t frame push =
    let r = { frame; rpos = 0; rlimit = String.length frame } in
    if not t.resync then r_frame t r push
    else begin
      let ss = Hashtbl.copy t.strings in
      let sn = t.next_string in
      let so = Hashtbl.copy t.objs in
      let sl = Hashtbl.copy t.locks in
      try r_frame t r push
      with e ->
        t.strings <- ss;
        t.next_string <- sn;
        t.objs <- so;
        t.locks <- sl;
        raise e
    end

  (* A resync can only recover mid-stream corruption: a bad header and
     data after a consumed end marker stay fatal even when scanning. *)
  let recoverable t = function
    | Corrupt _ -> t.state = Frames
    | Bad_magic | Unsupported_version _ | Truncated -> false

  let feed t ?(off = 0) ?len input =
    let len = match len with Some l -> l | None -> String.length input - off in
    if off < 0 || len < 0 || off + len > String.length input then
      invalid_arg "Codec.Decoder.feed: invalid slice";
    match t.state with
    | Failed e -> Error e
    | _ -> (
        Crd_obs.Counter.add rx_bytes_total len;
        Buffer.add_substring t.buf input off len;
        let events = ref [] in
        let push e = events := e :: !events in
        try
          if t.state = Header then check_header t;
          if t.state = Frames then begin
            let continue = ref true in
            while !continue do
              let saved_events = !events in
              try
                match try_varint t with
                | None -> continue := false
                | Some (frame_len, hdr_len) ->
                    if frame_len = 0 then begin
                      t.pos <- t.pos + hdr_len;
                      t.state <- Finished;
                      continue := false;
                      if available t > 0 then
                        corrupt "trailing data after end of stream"
                    end
                    else if frame_len < 0 || frame_len > max_frame_bytes then
                      corrupt "frame length %d out of bounds" frame_len
                    else if available t < hdr_len + frame_len then
                      continue := false
                    else begin
                      let frame =
                        Buffer.sub t.buf (t.pos + hdr_len) frame_len
                      in
                      if Crd_fault.fire fp_decode_frame then
                        corrupt "fault injected: decode_frame";
                      parse_frame t frame push;
                      (* Consume the frame only once it parsed: a resync
                         restarts its scan from the frame's first byte. *)
                      t.pos <- t.pos + hdr_len + frame_len;
                      Crd_obs.Counter.incr frames_total;
                      compact t
                    end
              with Fail e when t.resync && recoverable t e ->
                events := saved_events;
                t.pos <- t.pos + 1;
                Crd_obs.Counter.incr resync_total;
                compact t
            done
          end
          else if t.state = Finished && available t > 0 then
            corrupt "trailing data after end of stream";
          Ok (List.rev !events)
        with
        | Fail e ->
            t.state <- Failed e;
            Crd_obs.Counter.incr decode_errors_total;
            Error e
        | e ->
            (* Totality backstop: no parsing exception may escape. *)
            let err = Corrupt (Printexc.to_string e) in
            t.state <- Failed err;
            Crd_obs.Counter.incr decode_errors_total;
            Error err)

  let finish t =
    match t.state with
    | Finished -> Ok ()
    | Failed e -> Error e
    | Header | Frames -> Error Truncated
end

(* ------------------------------------------------------------------ *)
(* Whole-value convenience                                             *)
(* ------------------------------------------------------------------ *)

let encode_trace ?chunk_bytes trace =
  let out = Buffer.create (64 + (8 * Trace.length trace)) in
  let enc = Encoder.create ?chunk_bytes ~emit:(Buffer.add_string out) () in
  Trace.iter_events trace ~f:(Encoder.event enc);
  Encoder.close enc;
  Buffer.contents out

let decode_string ?resync s =
  let dec = Decoder.create ?resync () in
  match Decoder.feed dec s with
  | Error e -> Error e
  | Ok events -> (
      match Decoder.finish dec with
      | Error e -> Error e
      | Ok () -> Ok (Trace.of_list events))

let write_channel oc trace =
  let enc = Encoder.create ~emit:(Out_channel.output_string oc) () in
  Trace.iter_events trace ~f:(Encoder.event enc);
  Encoder.close enc

let to_file path trace =
  match Out_channel.with_open_bin path (fun oc -> write_channel oc trace) with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

let iter_channel ic ~f =
  let dec = Decoder.create () in
  let bytes = Bytes.create 65536 in
  let rec go () =
    let n = Stdlib.input ic bytes 0 (Bytes.length bytes) in
    if n = 0 then Decoder.finish dec
    else
      match Decoder.feed dec (Bytes.sub_string bytes 0 n) with
      | Error e -> Error e
      | Ok events ->
          List.iter f events;
          if Decoder.finished dec then Decoder.finish dec else go ()
  in
  go ()

let of_channel ic =
  let trace = Trace.create () in
  match iter_channel ic ~f:(Trace.append trace) with
  | Ok () -> Ok trace
  | Error e -> Error e

let of_file path =
  match In_channel.with_open_bin path of_channel with
  | Ok t -> Ok t
  | Error e -> Error (error_to_string e)
  | exception Sys_error msg -> Error msg
