open Crd_base
open Crd_trace

(* The zero-copy CRDW decoder: same grammar, same typed errors and the
   same observable behaviour as [Codec.Decoder] (which stays as the
   reference oracle — see test/test_bigwire.ml for the differential
   property), but parsing in place over Bigarray slices:

   - no per-frame [Buffer.sub] / [String.sub]: a frame is a (pos, limit)
     window over the input or the pending buffer;
   - interned strings materialize an OCaml string once per distinct
     content: a definition's slice is hashed and compared in place
     against the pool before any allocation;
   - object/lock references resolve through dense arrays (real encoders
     assign ids sequentially), not a hashtable probe per event;
   - when a feed arrives with nothing pending, frames decode straight
     from the caller's slice and only the incomplete tail is copied;
   - the push-based entry points ([feed_iter], [iter_bigstring],
     [iter_file]) hand each event to the consumer as it is parsed, with
     no intermediate list: in a streaming consumer the events die in the
     minor heap instead of being promoted twice. *)

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let create_bigstring n : bigstring =
  Bigarray.Array1.create Bigarray.char Bigarray.c_layout n

let bigstring_of_string s =
  let n = String.length s in
  let b = create_bigstring n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set b i (String.unsafe_get s i)
  done;
  b

let bigstring_to_string (b : bigstring) off len =
  let out = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set out i (Bigarray.Array1.unsafe_get b (off + i))
  done;
  Bytes.unsafe_to_string out

(* Read-only mmap of a whole file. Must stay total: a file that cannot
   be mapped (a pipe, an exotic filesystem) is an [Error], and the
   callers fall back to streaming reads. *)
let map_file path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match (Unix.LargeFile.fstat fd).Unix.LargeFile.st_size with
          | exception Unix.Unix_error (e, _, _) ->
              Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
          | 0L -> Ok (create_bigstring 0)
          | size when size > Int64.of_int max_int ->
              Error (Printf.sprintf "%s: too large to map" path)
          | size -> (
              match
                Unix.map_file fd Bigarray.char Bigarray.c_layout false
                  [| Int64.to_int size |]
              with
              | exception Unix.Unix_error (e, _, _) ->
                  Error (Printf.sprintf "%s: mmap: %s" path (Unix.error_message e))
              | genarray -> Ok (Bigarray.array1_of_genarray genarray)))

(* ------------------------------------------------------------------ *)
(* Decoder                                                             *)
(* ------------------------------------------------------------------ *)

module Decoder = struct
  exception Fail of Codec.error

  let fail e = raise (Fail e)
  let corrupt fmt = Fmt.kstr (fun s -> fail (Codec.Corrupt s)) fmt

  (* Approximate bytes held by live decoders (pending buffers, intern
     pools, ref tables) — the [mem_intern_bytes] leg of the server's
     overload memory accounting. Charged incrementally as tables grow,
     released wholesale by {!release} (or the GC finalizer backstop);
     resync rollbacks keep their high-water charge, which errs toward
     shedding, never toward under-counting. *)
  let mem_intern_bytes =
    lazy
      (Crd_obs.gauge
         ~help:"Approximate bytes held by live CRDW decoder state"
         "mem_intern_bytes")

  type state = Header | Frames | Finished | Failed of Codec.error

  (* Ids above this bound (from a hand-crafted stream — real encoders
     count up from zero) spill to a hashtable instead of growing the
     dense array without limit. *)
  let dense_limit = 1 lsl 16

  (* The in-place string pool: content hash -> previously materialized
     strings with that hash. Never rolled back on resync — entries are
     content-addressed, so a string interned by a frame that later
     failed still denotes the same content if redefined. *)
  type t = {
    mutable state : state;
    resync : bool;
    mutable buf : bigstring;  (* pending unconsumed input *)
    mutable pos : int;  (* consumed prefix of [buf] *)
    mutable fill : int;  (* valid bytes in [buf] *)
    mutable strings : string array;  (* intern id -> string *)
    mutable next_string : int;
    pool : (int, string) Hashtbl.t;
    mutable objs : Obj_id.t option array;  (* dense id -> object *)
    mutable objs_spill : (int, Obj_id.t) Hashtbl.t;
    mutable locks : Lock_id.t option array;
    mutable locks_spill : (int, Lock_id.t) Hashtbl.t;
    mutable mem : int;  (* bytes charged to [mem_intern_bytes] *)
    mutable released : bool;
  }

  let charge t n =
    if not t.released then begin
      t.mem <- t.mem + n;
      Crd_obs.Gauge.add (Lazy.force mem_intern_bytes) n
    end

  (* Give the decoder's whole charge back. Idempotent; called by the
     convenience wrappers, by server sessions when a decode ends, and
     as a GC-finalizer backstop for decoders dropped without one. *)
  let release t =
    if not t.released then begin
      t.released <- true;
      Crd_obs.Gauge.add (Lazy.force mem_intern_bytes) (-t.mem);
      t.mem <- 0
    end

  let mem t = t.mem

  let create ?(resync = false) () =
    let t =
      {
        state = Header;
        resync;
        buf = create_bigstring 65536;
        pos = 0;
        fill = 0;
        strings = Array.make 64 "";
        next_string = 0;
        pool = Hashtbl.create 64;
        objs = Array.make 64 None;
        objs_spill = Hashtbl.create 8;
        locks = Array.make 16 None;
        locks_spill = Hashtbl.create 8;
        mem = 0;
        released = false;
      }
    in
    charge t (65536 + (8 * (64 + 64 + 16)));
    Gc.finalise release t;
    t

  let finished t = t.state = Finished

  (* --- frame-payload reader over a [(buf, pos, limit)] window ------- *)

  (* [rpos]/[rlimit] bound the current frame; overrun means corruption,
     because the frame header promised the bytes. The window is plain
     mutable state (no per-frame record allocation). *)
  type cursor = { mutable cb : bigstring; mutable rpos : int; mutable rlimit : int }

  let r_byte c =
    if c.rpos >= c.rlimit then corrupt "record overruns its frame";
    let v = Char.code (Bigarray.Array1.unsafe_get c.cb c.rpos) in
    c.rpos <- c.rpos + 1;
    v

  let r_varint c =
    (* Hot path: almost every varint is one byte; read it without the
       loop state. Multi-byte continuations fall through to the loop. *)
    if c.rpos < c.rlimit then begin
      let b0 = Char.code (Bigarray.Array1.unsafe_get c.cb c.rpos) in
      if b0 < 0x80 then begin
        c.rpos <- c.rpos + 1;
        b0
      end
      else begin
        let acc = ref (b0 land 0x7f) in
        let shift = ref 7 in
        c.rpos <- c.rpos + 1;
        let continue = ref true in
        while !continue do
          let b = r_byte c in
          acc := !acc lor ((b land 0x7f) lsl !shift);
          if b < 0x80 then continue := false
          else begin
            shift := !shift + 7;
            if !shift > 56 then corrupt "varint longer than 9 bytes"
          end
        done;
        !acc
      end
    end
    else corrupt "record overruns its frame"

  let r_zigzag c = Codec.unzigzag (r_varint c)

  (* --- interning with in-place comparison --------------------------- *)

  (* FNV-1a over the slice (offset basis truncated to OCaml's 63-bit
     ints), folded non-negative. *)
  let hash_slice (b : bigstring) pos len =
    let h = ref 0x4bf29ce484222325 in
    for i = pos to pos + len - 1 do
      h := (!h lxor Char.code (Bigarray.Array1.unsafe_get b i)) * 0x100000001b3
    done;
    !h land max_int

  let slice_equal (b : bigstring) pos len s =
    String.length s = len
    &&
    let i = ref 0 in
    while
      !i < len
      && Char.equal (Bigarray.Array1.unsafe_get b (pos + !i))
           (String.unsafe_get s !i)
    do
      incr i
    done;
    !i = len

  (* Materialize the slice as an OCaml string, reusing a pooled string
     of identical content when one exists. *)
  let intern t (b : bigstring) pos len =
    let h = hash_slice b pos len in
    let rec find = function
      | [] ->
          let s = bigstring_to_string b pos len in
          Hashtbl.add t.pool h s;
          (* string header + content + a pool bucket, roughly *)
          charge t (len + 48);
          s
      | s :: rest -> if slice_equal b pos len s then s else find rest
    in
    find (Hashtbl.find_all t.pool h)

  let r_string_def t c =
    let len = r_varint c in
    if len < 0 || len > c.rlimit - c.rpos then
      corrupt "string definition overruns its frame";
    let s = intern t c.cb c.rpos len in
    c.rpos <- c.rpos + len;
    if t.next_string >= Array.length t.strings then begin
      let bigger = Array.make (2 * Array.length t.strings) "" in
      Array.blit t.strings 0 bigger 0 t.next_string;
      charge t (8 * (Array.length bigger - Array.length t.strings));
      t.strings <- bigger
    end;
    Array.unsafe_set t.strings t.next_string s;
    t.next_string <- t.next_string + 1

  let r_str_ref t c =
    let id = r_varint c in
    if id >= 0 && id < t.next_string then Array.unsafe_get t.strings id
    else corrupt "reference to undefined string %d" id

  (* --- object/lock reference tables --------------------------------- *)

  let grow_dense arr id =
    let cap = ref (2 * Array.length arr) in
    while id >= !cap do
      cap := 2 * !cap
    done;
    let bigger = Array.make !cap None in
    Array.blit arr 0 bigger 0 (Array.length arr);
    bigger

  let def_obj t id o =
    if id >= 0 && id < dense_limit then begin
      if id >= Array.length t.objs then begin
        let old = Array.length t.objs in
        t.objs <- grow_dense t.objs id;
        charge t (8 * (Array.length t.objs - old))
      end;
      match Array.unsafe_get t.objs id with
      | Some _ -> corrupt "duplicate object %d" id
      | None -> Array.unsafe_set t.objs id (Some o)
    end
    else begin
      if Hashtbl.mem t.objs_spill id then corrupt "duplicate object %d" id;
      Hashtbl.add t.objs_spill id o;
      charge t 48
    end

  let def_lock t id l =
    if id >= 0 && id < dense_limit then begin
      if id >= Array.length t.locks then begin
        let old = Array.length t.locks in
        t.locks <- grow_dense t.locks id;
        charge t (8 * (Array.length t.locks - old))
      end;
      match Array.unsafe_get t.locks id with
      | Some _ -> corrupt "duplicate lock %d" id
      | None -> Array.unsafe_set t.locks id (Some l)
    end
    else begin
      if Hashtbl.mem t.locks_spill id then corrupt "duplicate lock %d" id;
      Hashtbl.add t.locks_spill id l;
      charge t 48
    end

  let r_obj_ref t c =
    let id = r_zigzag c in
    if id >= 0 && id < Array.length t.objs then
      match Array.unsafe_get t.objs id with
      | Some o -> o
      | None -> corrupt "reference to undefined object %d" id
    else
      match Hashtbl.find_opt t.objs_spill id with
      | Some o -> o
      | None -> corrupt "reference to undefined object %d" id

  let r_lock_ref t c =
    let id = r_zigzag c in
    if id >= 0 && id < Array.length t.locks then
      match Array.unsafe_get t.locks id with
      | Some l -> l
      | None -> corrupt "reference to undefined lock %d" id
    else
      match Hashtbl.find_opt t.locks_spill id with
      | Some l -> l
      | None -> corrupt "reference to undefined lock %d" id

  let r_tid c =
    let v = r_varint c in
    if v < 0 then corrupt "negative thread id";
    Tid.of_int v

  let r_value t c =
    let tag = r_byte c in
    if tag = Codec.val_nil then Value.Nil
    else if tag = Codec.val_false then Value.Bool false
    else if tag = Codec.val_true then Value.Bool true
    else if tag = Codec.val_int then Value.Int (r_zigzag c)
    else if tag = Codec.val_str then Value.Str (r_str_ref t c)
    else if tag = Codec.val_ref then Value.Ref (r_zigzag c)
    else corrupt "unknown value tag 0x%02x" tag

  let r_values t c =
    let n = r_varint c in
    if n < 0 || n > c.rlimit - c.rpos then
      corrupt "value list longer than its frame";
    List.init n (fun _ -> r_value t c)

  let r_loc t c =
    let tag = r_byte c in
    if tag = Codec.loc_global then Mem_loc.Global (r_str_ref t c)
    else if tag = Codec.loc_field then
      let o = r_obj_ref t c in
      Mem_loc.Field (o, r_str_ref t c)
    else if tag = Codec.loc_slot then
      let o = r_obj_ref t c in
      let f = r_str_ref t c in
      Mem_loc.Slot (o, f, r_value t c)
    else corrupt "unknown location tag 0x%02x" tag

  (* One frame payload: interning definitions and events, in order. *)
  let r_frame t c push =
    while c.rpos < c.rlimit do
      let tag = r_byte c in
      if tag = Codec.tag_str_def then r_string_def t c
      else if tag = Codec.tag_obj_def then begin
        let id = r_zigzag c in
        let name = r_str_ref t c in
        def_obj t id (Obj_id.make ~name id)
      end
      else if tag = Codec.tag_lock_def then begin
        let id = r_zigzag c in
        let name = r_str_ref t c in
        def_lock t id (Lock_id.make ~name id)
      end
      else begin
        let tid = r_tid c in
        let op =
          if tag = Codec.tag_call then begin
            let obj = r_obj_ref t c in
            let meth = r_str_ref t c in
            let args = r_values t c in
            let rets = r_values t c in
            Event.Call (Action.make ~obj ~meth ~args ~rets ())
          end
          else if tag = Codec.tag_read then Event.Read (r_loc t c)
          else if tag = Codec.tag_write then Event.Write (r_loc t c)
          else if tag = Codec.tag_fork then Event.Fork (r_tid c)
          else if tag = Codec.tag_join then Event.Join (r_tid c)
          else if tag = Codec.tag_acquire then Event.Acquire (r_lock_ref t c)
          else if tag = Codec.tag_release then Event.Release (r_lock_ref t c)
          else if tag = Codec.tag_begin then Event.Begin
          else if tag = Codec.tag_end then Event.End
          else corrupt "unknown record tag 0x%02x" tag
        in
        push { Event.tid; op }
      end
    done

  (* Parse one frame window. In resync mode the intern tables are
     snapshotted first and restored on failure, so a corrupt frame
     cannot poison the references of the frames that follow it. The
     string table rolls back by index alone (definitions are sequential
     appends); the content pool deliberately keeps orphaned entries. *)
  let parse_frame t c push =
    if not t.resync then r_frame t c push
    else begin
      let sn = t.next_string in
      let so = Array.copy t.objs in
      let sos = Hashtbl.copy t.objs_spill in
      let sl = Array.copy t.locks in
      let sls = Hashtbl.copy t.locks_spill in
      try r_frame t c push
      with e ->
        t.next_string <- sn;
        t.objs <- so;
        t.objs_spill <- sos;
        t.locks <- sl;
        t.locks_spill <- sls;
        raise e
    end

  (* A resync can only recover mid-stream corruption: a bad header and
     data after a consumed end marker stay fatal even when scanning. *)
  let recoverable t = function
    | Codec.Corrupt _ -> t.state = Frames
    | Codec.Bad_magic | Codec.Unsupported_version _ | Codec.Truncated -> false

  (* --- framing layer ------------------------------------------------ *)

  (* Frame-header varint at [pos] in [(buf, limit)]: [None] while the
     varint itself is incomplete (wait for more input). *)
  let try_varint (buf : bigstring) pos limit =
    let acc = ref 0 in
    let shift = ref 0 in
    let i = ref pos in
    let result = ref None in
    (try
       while !result = None do
         if !i >= limit then raise Exit;
         let b = Char.code (Bigarray.Array1.unsafe_get buf !i) in
         incr i;
         acc := !acc lor ((b land 0x7f) lsl !shift);
         if b < 0x80 then result := Some (!acc, !i - pos)
         else begin
           shift := !shift + 7;
           if !shift > 56 then corrupt "frame length varint longer than 9 bytes"
         end
       done
     with Exit -> ());
    !result

  (* Drain as many whole frames as possible from [(buf, !pos, limit)],
     advancing [!pos]; shared by the direct (caller's slice) and the
     pending-buffer paths. *)
  let drain t (buf : bigstring) pos limit push =
    let magic = Codec.magic in
    let mlen = String.length magic in
    if t.state = Header then begin
      (* Report a magic mismatch as soon as the prefix diverges, even on
         short input. *)
      let n = min (limit - !pos) mlen in
      for i = 0 to n - 1 do
        if Bigarray.Array1.unsafe_get buf (!pos + i) <> magic.[i] then
          fail Codec.Bad_magic
      done;
      if limit - !pos >= mlen + 1 then begin
        let v = Char.code (Bigarray.Array1.unsafe_get buf (!pos + mlen)) in
        if v <> Codec.version then fail (Codec.Unsupported_version v);
        pos := !pos + mlen + 1;
        t.state <- Frames
      end
    end;
    if t.state = Frames then begin
      let c = { cb = buf; rpos = 0; rlimit = 0 } in
      (* Resync mode buffers each frame's events and commits them to
         [push] only once the whole frame succeeds, so a resync discards
         the partial output of the corrupt frame. Without resync a
         failure is fatal to the whole decode, so events push straight
         through — no per-event cons on the fast path. *)
      let frame_events = ref [] in
      let buffer =
        if t.resync then fun e -> frame_events := e :: !frame_events else push
      in
      let continue = ref true in
      while !continue do
        frame_events := [];
        try
          match try_varint buf !pos limit with
          | None -> continue := false
          | Some (frame_len, hdr_len) ->
              if frame_len = 0 then begin
                pos := !pos + hdr_len;
                t.state <- Finished;
                continue := false;
                if limit - !pos > 0 then
                  corrupt "trailing data after end of stream"
              end
              else if frame_len < 0 || frame_len > Codec.max_frame_bytes then
                corrupt "frame length %d out of bounds" frame_len
              else if limit - !pos < hdr_len + frame_len then continue := false
              else begin
                c.rpos <- !pos + hdr_len;
                c.rlimit <- !pos + hdr_len + frame_len;
                if Crd_fault.fire Codec.fp_decode_frame then
                  corrupt "fault injected: decode_frame";
                parse_frame t c buffer;
                (* Consume the frame only once it parsed: a resync
                   restarts its scan from the frame's first byte. *)
                pos := !pos + hdr_len + frame_len;
                Crd_obs.Counter.incr Codec.frames_total;
                if t.resync then List.iter push (List.rev !frame_events)
              end
        with Fail e when t.resync && recoverable t e ->
          pos := !pos + 1;
          Crd_obs.Counter.incr Codec.resync_total
      done
    end
    else if t.state = Finished && limit - !pos > 0 then
      corrupt "trailing data after end of stream"

  (* --- pending buffer management ------------------------------------ *)

  let pending t = t.fill - t.pos

  (* Make room for [extra] more bytes: shift the consumed prefix away
     first, grow only if the live bytes plus [extra] still don't fit. *)
  let reserve t extra =
    if t.fill + extra > Bigarray.Array1.dim t.buf then begin
      let live = pending t in
      if t.pos > 0 then begin
        if live > 0 then
          Bigarray.Array1.blit
            (Bigarray.Array1.sub t.buf t.pos live)
            (Bigarray.Array1.sub t.buf 0 live);
        t.pos <- 0;
        t.fill <- live
      end;
      if t.fill + extra > Bigarray.Array1.dim t.buf then begin
        let cap = ref (2 * Bigarray.Array1.dim t.buf) in
        while t.fill + extra > !cap do
          cap := 2 * !cap
        done;
        charge t (!cap - Bigarray.Array1.dim t.buf);
        let bigger = create_bigstring !cap in
        if t.fill > 0 then
          Bigarray.Array1.blit
            (Bigarray.Array1.sub t.buf 0 t.fill)
            (Bigarray.Array1.sub bigger 0 t.fill);
        t.buf <- bigger
      end
    end

  (* After a drain over the pending buffer: drop the consumed prefix
     once it dominates, so the buffer stays O(one frame). *)
  let compact t =
    if t.pos > 65536 && t.pos * 2 > t.fill then begin
      let live = pending t in
      if live > 0 then
        Bigarray.Array1.blit
          (Bigarray.Array1.sub t.buf t.pos live)
          (Bigarray.Array1.sub t.buf 0 live);
      t.pos <- 0;
      t.fill <- live
    end

  (* An exception raised by the consumer's callback, marked so the
     totality backstop below does not mistake it for a parser bug: it
     must propagate to the caller unchanged, without poisoning the
     decoder. *)
  exception Consumer of exn

  let guard_consumer f e = try f e with ex -> raise (Consumer ex)

  (* The state/error wrapper shared by every feed entry point: sticky
     failures, typed errors out of [Fail], and a totality backstop (no
     parsing exception may escape). *)
  let run_protected t k =
    match t.state with
    | Failed e -> Error e
    | _ -> (
        try
          k ();
          Ok ()
        with
        | Fail e ->
            t.state <- Failed e;
            Crd_obs.Counter.incr Codec.decode_errors_total;
            Error e
        | Consumer ex -> raise ex
        | e ->
            let err = Codec.Corrupt (Printexc.to_string e) in
            t.state <- Failed err;
            Crd_obs.Counter.incr Codec.decode_errors_total;
            Error err)

  let drain_pending t push =
    let pos = ref t.pos in
    (* On failure the consumed prefix up to the failure point is gone
       either way (errors are sticky), so updating [t.pos] in a
       [finally] keeps success and failure consistent. *)
    Fun.protect
      ~finally:(fun () ->
        t.pos <- !pos;
        compact t)
      (fun () -> drain t t.buf pos t.fill push)

  (* Push-based feed bodies: the public list-returning API and the
     iter API are thin wrappers over these. *)

  let feed_push t off len (input : bigstring) push =
    if off < 0 || len < 0 || off + len > Bigarray.Array1.dim input then
      invalid_arg "Bigcodec.Decoder.feed: invalid slice";
    Crd_obs.Counter.add Codec.rx_bytes_total len;
    if pending t = 0 then begin
      (* Zero-copy fast path: parse the caller's slice in place. *)
      t.pos <- 0;
      t.fill <- 0;
      let pos = ref off in
      let limit = off + len in
      Fun.protect
        ~finally:(fun () ->
          let rest = limit - !pos in
          if rest > 0 && (match t.state with Failed _ -> false | _ -> true)
          then begin
            reserve t rest;
            Bigarray.Array1.blit
              (Bigarray.Array1.sub input !pos rest)
              (Bigarray.Array1.sub t.buf t.fill rest);
            t.fill <- t.fill + rest
          end)
        (fun () -> drain t input pos limit push)
    end
    else begin
      reserve t len;
      Bigarray.Array1.blit
        (Bigarray.Array1.sub input off len)
        (Bigarray.Array1.sub t.buf t.fill len);
      t.fill <- t.fill + len;
      drain_pending t push
    end

  (* Bytes cannot be parsed in place (the cursor is bigstring-typed), so
     the slice lands in the pending buffer with one copy — still none of
     the legacy path's per-read [Bytes.sub_string] + [Buffer] copies. *)
  let feed_bytes_push t off len input push =
    if off < 0 || len < 0 || off + len > Bytes.length input then
      invalid_arg "Bigcodec.Decoder.feed_bytes: invalid slice";
    Crd_obs.Counter.add Codec.rx_bytes_total len;
    reserve t len;
    let buf = t.buf in
    let base = t.fill in
    for i = 0 to len - 1 do
      Bigarray.Array1.unsafe_set buf (base + i) (Bytes.unsafe_get input (off + i))
    done;
    t.fill <- t.fill + len;
    drain_pending t push

  let collected t k =
    let events = ref [] in
    let push e = events := e :: !events in
    match run_protected t (fun () -> k push) with
    | Ok () -> Ok (List.rev !events)
    | Error e -> Error e

  let feed t ?(off = 0) ?len (input : bigstring) =
    let len =
      match len with Some l -> l | None -> Bigarray.Array1.dim input - off
    in
    collected t (feed_push t off len input)

  let feed_iter t ?(off = 0) ?len (input : bigstring) ~f =
    let len =
      match len with Some l -> l | None -> Bigarray.Array1.dim input - off
    in
    let f = guard_consumer f in
    run_protected t (fun () -> feed_push t off len input f)

  let feed_bytes t ?(off = 0) ?len input =
    let len = match len with Some l -> l | None -> Bytes.length input - off in
    collected t (feed_bytes_push t off len input)

  let feed_bytes_iter t ?(off = 0) ?len input ~f =
    let len = match len with Some l -> l | None -> Bytes.length input - off in
    let f = guard_consumer f in
    run_protected t (fun () -> feed_bytes_push t off len input f)

  let feed_string t ?(off = 0) ?len input =
    let len = match len with Some l -> l | None -> String.length input - off in
    if off < 0 || len < 0 || off + len > String.length input then
      invalid_arg "Bigcodec.Decoder.feed_string: invalid slice";
    feed_bytes t ~off ~len (Bytes.unsafe_of_string input)

  let finish t =
    match t.state with
    | Finished -> Ok ()
    | Failed e -> Error e
    | Header | Frames -> Error Codec.Truncated
end

(* ------------------------------------------------------------------ *)
(* Whole-value convenience                                             *)
(* ------------------------------------------------------------------ *)

let iter_bigstring ?resync b ~f =
  let dec = Decoder.create ?resync () in
  Fun.protect
    ~finally:(fun () -> Decoder.release dec)
    (fun () ->
      match Decoder.feed_iter dec b ~f with
      | Error e -> Error e
      | Ok () -> Decoder.finish dec)

(* Events append straight into the trace's array — no intermediate
   list, so the only promoted data is the decoded trace itself. A
   failed decode discards the partially filled trace wholesale, which
   matches the legacy decoder's all-or-nothing result. *)
let decode_with feed_one ?resync () =
  let dec = Decoder.create ?resync () in
  let trace = Trace.create () in
  Fun.protect
    ~finally:(fun () -> Decoder.release dec)
    (fun () ->
      match feed_one dec (Trace.append trace) with
      | Error e -> Error e
      | Ok () -> (
          match Decoder.finish dec with Error e -> Error e | Ok () -> Ok trace))

let decode_bigstring ?resync b =
  decode_with (fun dec f -> Decoder.feed_iter dec b ~f) ?resync ()

let decode_string ?resync s =
  decode_with
    (fun dec f ->
      Decoder.feed_bytes_iter dec (Bytes.unsafe_of_string s) ~f)
    ?resync ()

(* mmap the file and decode in place; files that refuse to map (pipes,
   special filesystems) stream through the legacy channel path instead,
   so every caller keeps working on every input. *)
let iter_file ?resync path ~f =
  match map_file path with
  | Ok b -> Result.map_error Codec.error_to_string (iter_bigstring ?resync b ~f)
  | Error _ -> (
      match
        In_channel.with_open_bin path (fun ic -> Codec.iter_channel ic ~f)
      with
      | Ok () -> Ok ()
      | Error e -> Error (Codec.error_to_string e)
      | exception Sys_error msg -> Error msg)

let of_file ?resync path =
  let trace = Trace.create () in
  match iter_file ?resync path ~f:(Trace.append trace) with
  | Ok () -> Ok trace
  | Error e -> Error e
