(** [Crd_sync] — pairwise anti-entropy replication of {!Crd_racedb}.

    Every node carries a stable id ([DIR/node]) and a logical version
    vector over its racedb entries ({!Crd_racedb.Db.version}). One
    exchange is push-pull over a single connection:

    {v
    client                                server
      "CRDY" v  HELLO{node, vv_c}  ---->
                <----  HELLO{node, vv_s}
                <----  DELTA*  ACK{vv_s, 0}      entries newer than vv_c
      merge all buffered DELTAs
      DELTA*  ACK{vv_c', applied}  ---->         entries newer than vv_s
                                            merge all buffered DELTAs
                <----  ACK{vv_s', applied}
    v}

    Frames ride the CRDW varint framing ({!Crd_wire.Codec.sync_magic},
    kind bytes [sync_hello]/[sync_delta]/[sync_ack]/[sync_error]).
    Because {!Crd_racedb.Entry.merge} is a lattice join, the exchange
    is idempotent — re-syncing a converged pair transfers two empty
    deltas and changes nothing — and any gossip schedule that keeps
    pairing nodes converges the fleet.

    {2 Failure model}

    Every network read/write and the delta apply are
    fault-point-injectable ([sync_read], [sync_write], [sync_merge];
    connection establishment fires [sync_connect] in the callers). A
    delta stream is applied all-or-nothing, only once its closing ACK
    has been read: the version vector is derived from stored entries
    (pointwise max), so merging a prefix of a stream would advance it
    past entries never received and the next round would skip them
    forever. A connection dying mid-delta therefore applies nothing;
    the retry re-sends the full delta and the merge stays idempotent.
    The apply itself is a single durable merge-batch frame
    ({!Crd_racedb.Db.merge}), so a crash or injected fault {e inside}
    the merge also applies nothing. No exchange ever blocks a server's
    ingest path: the single apply takes the db lock once, not for the
    connection's lifetime.

    Because the stream must be buffered until its ACK and the listener
    shares the unauthenticated session port, one exchange's delta
    stream is capped (2^20 entries, 64 MiB of frame payload; frames
    themselves at 16 MiB). A peer exceeding the caps gets a best-effort
    [sync_error] frame and the exchange fails without applying
    anything. *)

type summary = {
  peer : string;  (** the peer's node id *)
  sent : int;  (** entries streamed to the peer *)
  received : int;  (** entries the peer streamed to us *)
  applied : int;  (** received entries that changed local state *)
  peer_applied : int;  (** sent entries that changed the peer *)
}

val pp_summary : summary Fmt.t

val client :
  ?timeout:float ->
  ?deadline:float ->
  Unix.file_descr ->
  Crd_racedb.Db.t ->
  (summary, string) result
(** [client fd db] runs one full exchange as the initiating side over a
    connected socket. [timeout] (default 30 s, 0 disables) bounds each
    socket read/write; [deadline] (seconds, default [10 * timeout],
    0 disables) bounds the {e whole} exchange — per-read timeouts reset
    on every byte, so without it a peer dripping one byte per window
    could hold the exchange (and its buffered delta stream) open
    indefinitely. Never raises: faults, I/O and protocol errors come
    back as [Error]. *)

val serve :
  ?timeout:float ->
  ?deadline:float ->
  version:int ->
  Unix.file_descr ->
  Crd_racedb.Db.t ->
  (summary, string) result
(** [serve ~version fd db] answers an exchange after the accept loop
    consumed the ["CRDY" version] preamble. [timeout] and [deadline]
    as in {!client}. *)

val refuse : Unix.file_descr -> string -> unit
(** Best-effort [sync_error] frame for connections that cannot be
    served (e.g. the server runs without a racedb). *)

(** {2 Fault points} *)

val fp_connect : Crd_fault.point
(** [sync_connect] — fired by connection-establishing callers. *)

val fp_read : Crd_fault.point
val fp_write : Crd_fault.point
val fp_merge : Crd_fault.point
