module Db = Crd_racedb.Db
module Entry = Crd_racedb.Entry
module Vv = Crd_racedb.Vv
module Codec = Crd_wire.Codec

(* --- observability ------------------------------------------------- *)

let m_exchanges =
  Crd_obs.counter ~help:"Sync exchanges completed" "sync_exchanges_total"

let m_failures =
  Crd_obs.counter ~help:"Sync exchanges failed (fault, I/O, protocol)"
    "sync_failures_total"

let m_sent =
  Crd_obs.counter ~help:"Racedb entries sent to peers" "sync_entries_sent_total"

let m_received =
  Crd_obs.counter ~help:"Racedb entries received from peers"
    "sync_entries_recv_total"

let m_applied =
  Crd_obs.counter ~help:"Received entries that changed local state"
    "sync_entries_applied_total"

let m_bytes_sent =
  Crd_obs.counter ~help:"Sync frame bytes written" "sync_bytes_sent_total"

let m_bytes_recv =
  Crd_obs.counter ~help:"Sync frame bytes read" "sync_bytes_recv_total"

let h_exchange =
  Crd_obs.histogram ~help:"Wall time of one sync exchange" "sync_seconds"

(* --- fault points --------------------------------------------------- *)

let fp_connect = Crd_fault.point "sync_connect"
let fp_read = Crd_fault.point "sync_read"
let fp_write = Crd_fault.point "sync_write"
let fp_merge = Crd_fault.point "sync_merge"

(* --- fd plumbing ---------------------------------------------------- *)

(* Sync frames are small by construction — the sender flushes a delta
   batch at [delta_batch] entries or [delta_soft_bytes], whichever
   comes first, so one frame never much exceeds the soft limit plus a
   single entry (itself bounded by Record.max_bytes + fixed rings).
   16 MiB leaves an order of magnitude of slack while refusing the
   gigabyte length prefixes a hostile peer could otherwise make us
   allocate. *)
let max_frame_bytes = 1 lsl 24
let delta_batch = 64
let delta_soft_bytes = 1 lsl 20

(* Aggregate bounds on one exchange's buffered delta stream. The frames
   must be held until the closing ACK (the all-or-nothing apply), and
   the listener shares the unauthenticated session port — without a cap
   any peer could stream frames indefinitely and OOM the server before
   ever sending its ACK. *)
let max_exchange_entries = 1 lsl 20
let max_exchange_bytes = 1 lsl 26

let set_timeouts fd timeout =
  if timeout > 0. then begin
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout
     with Unix.Unix_error _ | Invalid_argument _ -> ());
    try Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
    with Unix.Unix_error _ | Invalid_argument _ -> ()
  end

(* EINTR-retrying syscall wrappers. [crd_server] cannot be a dependency
   here (it depends on us), so these mirror [Proto.read_retry] /
   [Proto.write_retry] and share the same ["io_eintr"] fault point by
   name — one chaos spec storms both layers. *)
let fp_io_eintr = Crd_fault.point "io_eintr"

let rec read_retry fd b off len =
  match
    if Crd_fault.fire fp_io_eintr then
      raise (Unix.Unix_error (Unix.EINTR, "read", ""))
    else Unix.read fd b off len
  with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd b off len

let rec write_retry fd b off len =
  match
    if Crd_fault.fire fp_io_eintr then
      raise (Unix.Unix_error (Unix.EINTR, "write", ""))
    else Unix.write fd b off len
  with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_retry fd b off len

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < len then go (off + write_retry fd b off (len - off))
  in
  go 0

(* The per-read socket timeout resets on every byte, so a peer dripping
   one byte per window could hold an exchange — and its buffered,
   capped-but-large delta stream — open indefinitely. [dl] is the
   absolute wall-clock deadline (Crd_obs.now_s) for the whole exchange:
   0. means none, and every read/write step checks it, so the exchange
   overruns the deadline by at most one socket-timeout window. *)
let check_deadline dl =
  if dl > 0. && Crd_obs.now_s () > dl then
    failwith "sync: exchange deadline exceeded"

let read_exact ~dl fd n ~what =
  let b = Bytes.create n in
  let rec go off =
    if off < n then begin
      check_deadline dl;
      match read_retry fd b off (n - off) with
      | 0 -> failwith (Printf.sprintf "sync: eof reading %s" what)
      | k -> go (off + k)
    end
  in
  go 0;
  Bytes.unsafe_to_string b

let read_varint_fd ~dl fd ~what =
  let b = Bytes.create 1 in
  let rec go acc shift n =
    if shift > 56 then failwith "sync: varint overflow";
    check_deadline dl;
    match read_retry fd b 0 1 with
    | 0 -> failwith (Printf.sprintf "sync: eof reading %s" what)
    | _ ->
        let c = Char.code (Bytes.get b 0) in
        let acc = acc lor ((c land 0x7f) lsl shift) in
        if c land 0x80 = 0 then (acc, n + 1) else go acc (shift + 7) (n + 1)
  in
  go 0 0 0

let write_frame ~dl fd payload =
  Crd_fault.inject fp_write;
  check_deadline dl;
  let b = Buffer.create (String.length payload + 4) in
  Codec.add_varint b (String.length payload);
  Buffer.add_string b payload;
  let s = Buffer.contents b in
  write_all fd s;
  Crd_obs.Counter.add m_bytes_sent (String.length s)

let read_frame ~dl fd =
  Crd_fault.inject fp_read;
  check_deadline dl;
  let len, hdr = read_varint_fd ~dl fd ~what:"frame length" in
  if len <= 0 || len > max_frame_bytes then failwith "sync: bad frame length";
  let p = read_exact ~dl fd len ~what:"frame" in
  Crd_obs.Counter.add m_bytes_recv (len + hdr);
  p

(* --- frame payloads ------------------------------------------------- *)

type frame =
  | Hello of string * Vv.t
  | Delta of Entry.t list
  | Ack of Vv.t * int
  | Refused of string

let hello_payload ~node ~vv =
  let b = Buffer.create 64 in
  Buffer.add_char b (Char.chr Codec.sync_hello);
  Codec.add_varint b (String.length node);
  Buffer.add_string b node;
  Vv.encode b vv;
  Buffer.contents b

let ack_payload ~vv ~applied =
  let b = Buffer.create 64 in
  Buffer.add_char b (Char.chr Codec.sync_ack);
  Vv.encode b vv;
  Codec.add_varint b applied;
  Buffer.contents b

let error_payload msg =
  let msg =
    if String.length msg > 512 then String.sub msg 0 512 else msg
  in
  let b = Buffer.create (String.length msg + 4) in
  Buffer.add_char b (Char.chr Codec.sync_error);
  Codec.add_varint b (String.length msg);
  Buffer.add_string b msg;
  Buffer.contents b

let parse_frame p =
  if p = "" then failwith "sync: empty frame";
  let kind = Char.code p.[0] in
  if kind = Codec.sync_hello then begin
    let n, pos = Codec.get_varint p 1 in
    if n <= 0 || n > Vv.node_max_bytes || pos + n > String.length p then
      failwith "sync: bad peer node id";
    let node = String.sub p pos n in
    let vv, _ = Vv.decode p (pos + n) in
    Hello (node, vv)
  end
  else if kind = Codec.sync_delta then begin
    let n, pos = Codec.get_varint p 1 in
    if n < 0 || n > 1 lsl 20 then failwith "sync: bad delta count";
    let rec go acc n pos =
      if n = 0 then Delta (List.rev acc)
      else
        let e, pos = Entry.decode p pos in
        go (e :: acc) (n - 1) pos
    in
    go [] n pos
  end
  else if kind = Codec.sync_ack then begin
    let vv, pos = Vv.decode p 1 in
    let applied, _ = Codec.get_varint p pos in
    Ack (vv, applied)
  end
  else if kind = Codec.sync_error then begin
    let n, pos = Codec.get_varint p 1 in
    if n < 0 || pos + n > String.length p then failwith "sync: bad error";
    Refused (String.sub p pos n)
  end
  else failwith (Printf.sprintf "sync: unknown frame kind %d" kind)

(* --- the exchange --------------------------------------------------- *)

type summary = {
  peer : string;
  sent : int;
  received : int;
  applied : int;
  peer_applied : int;
}

let pp_summary ppf s =
  Fmt.pf ppf "peer %s: sent %d, received %d, applied %d (peer applied %d)"
    s.peer s.sent s.received s.applied s.peer_applied

let refuse fd msg =
  try write_frame ~dl:0. fd (error_payload msg) with
  | Failure _ | Unix.Unix_error _ | Crd_fault.Injected _ -> ()

(* Stream every entry the peer (at [since]) has not seen, in batches
   bounded by entry count AND encoded size (so frames stay far under
   [max_frame_bytes]), closed by an ACK carrying our current vector and
   how many of the peer's entries we applied so far. *)
let send_deltas ~dl fd db ~since ~applied =
  let es = Db.delta db ~since in
  let entries_buf = Buffer.create 4096 in
  let count = ref 0 in
  let flush () =
    if !count > 0 then begin
      let b = Buffer.create (Buffer.length entries_buf + 8) in
      Buffer.add_char b (Char.chr Codec.sync_delta);
      Codec.add_varint b !count;
      Buffer.add_buffer b entries_buf;
      write_frame ~dl fd (Buffer.contents b);
      Buffer.clear entries_buf;
      count := 0
    end
  in
  List.iter
    (fun e ->
      Entry.encode entries_buf e;
      incr count;
      if !count >= delta_batch || Buffer.length entries_buf >= delta_soft_bytes
      then flush ())
    es;
  flush ();
  write_frame ~dl fd (ack_payload ~vv:(Db.version db) ~applied);
  let n = List.length es in
  Crd_obs.Counter.add m_sent n;
  n

(* Buffer delta batches until the peer's ACK, then apply them in one
   merge. The all-or-nothing apply is load-bearing: the version vector
   is the pointwise max over stored entry [ver]s, so merging a prefix
   of the stream can advance it past entries never received — the next
   round's [delta ~since] would then silently skip them forever. A
   stream that dies early must therefore apply nothing; the retry
   re-sends the full delta and the merge stays idempotent. *)
let recv_deltas ~dl fd db =
  let rec go acc received bytes =
    let p = read_frame ~dl fd in
    match parse_frame p with
    | Delta es ->
        let received = received + List.length es in
        let bytes = bytes + String.length p in
        if received > max_exchange_entries || bytes > max_exchange_bytes
        then begin
          refuse fd "delta stream exceeds exchange limits";
          failwith "sync: delta stream exceeds exchange limits"
        end;
        go (es :: acc) received bytes
    | Ack (_vv, peer_applied) ->
        (List.concat (List.rev acc), received, peer_applied)
    | Refused m -> failwith ("sync: peer error: " ^ m)
    | Hello _ -> failwith "sync: unexpected hello"
  in
  let entries, received, peer_applied = go [] 0 0 in
  Crd_fault.inject fp_merge;
  let applied = Db.merge db entries in
  Crd_obs.Counter.add m_received received;
  Crd_obs.Counter.add m_applied applied;
  (received, applied, peer_applied)

let fail m =
  Crd_obs.Counter.incr m_failures;
  Error m

let run f =
  Crd_obs.time h_exchange @@ fun () ->
  match f () with
  | v ->
      Crd_obs.Counter.incr m_exchanges;
      Ok v
  | exception Failure m -> fail m
  | exception Crd_fault.Injected m -> fail ("fault injected: " ^ m)
  | exception Unix.Unix_error (e, fn, _) ->
      fail (Printf.sprintf "sync: %s(%s)" (Unix.error_message e) fn)

let expect_hello ~dl fd =
  match parse_frame (read_frame ~dl fd) with
  | Hello (node, vv) -> (node, vv)
  | Refused m -> failwith ("sync: peer refused: " ^ m)
  | Delta _ | Ack _ -> failwith "sync: expected hello"

(* The whole-exchange deadline, from the per-read timeout when the
   caller gives none: generous enough that a healthy exchange (a few
   round trips plus bounded delta streams) never trips it, tight
   enough that a dripping peer cannot pin the exchange for hours. *)
let deadline_of ~timeout ~deadline =
  match deadline with
  | Some d when d > 0. -> Crd_obs.now_s () +. d
  | Some _ -> 0.
  | None -> if timeout > 0. then Crd_obs.now_s () +. (10. *. timeout) else 0.

let client ?(timeout = 30.) ?deadline fd db =
  run
    (fun () ->
      let dl = deadline_of ~timeout ~deadline in
      set_timeouts fd timeout;
      Crd_fault.inject fp_write;
      write_all fd
        (Codec.sync_magic ^ String.make 1 (Char.chr Codec.sync_version));
      Crd_obs.Counter.add m_bytes_sent 5;
      write_frame ~dl fd
        (hello_payload ~node:(Db.node_id db) ~vv:(Db.version db));
      let peer, peer_vv = expect_hello ~dl fd in
      (* the peer streams its missing entries first, then we answer
         with ours computed against the vector it advertised *)
      let received, applied, _ = recv_deltas ~dl fd db in
      let sent = send_deltas ~dl fd db ~since:peer_vv ~applied in
      match parse_frame (read_frame ~dl fd) with
      | Ack (_vv, peer_applied) -> { peer; sent; received; applied; peer_applied }
      | Refused m -> failwith ("sync: peer error: " ^ m)
      | Delta _ | Hello _ -> failwith "sync: expected final ack")


let serve ?(timeout = 30.) ?deadline ~version fd db =
  run
    (fun () ->
      let dl = deadline_of ~timeout ~deadline in
      if version <> Codec.sync_version then begin
        (try write_frame ~dl fd
           (error_payload (Printf.sprintf "unsupported sync version %d" version))
         with _ -> ());
        failwith (Printf.sprintf "sync: unsupported version %d" version)
      end;
      set_timeouts fd timeout;
      let peer, peer_vv = expect_hello ~dl fd in
      write_frame ~dl fd (hello_payload ~node:(Db.node_id db) ~vv:(Db.version db));
      let sent = send_deltas ~dl fd db ~since:peer_vv ~applied:0 in
      let received, applied, peer_applied = recv_deltas ~dl fd db in
      write_frame ~dl fd (ack_payload ~vv:(Db.version db) ~applied);
      { peer; sent; received; applied; peer_applied })
