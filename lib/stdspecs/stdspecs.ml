open Crd_spec

let dictionary_src =
  {|
object dictionary {
  method put(k, v) / p;
  method get(k) / v;
  method size() / r;

  commutes put(k1, v1) / p1 <> put(k2, v2) / p2
    when k1 != k2 || (v1 == p1 && v2 == p2);
  commutes put(k1, v1) / p1 <> get(k2) / v2
    when k1 != k2 || v1 == p1;
  commutes put(k1, v1) / p1 <> size() / r2
    when (v1 == nil && p1 == nil) || (v1 != nil && p1 != nil);
  commutes get(k1) / v1 <> get(k2) / v2 when true;
  commutes get(k1) / v1 <> size() / r2  when true;
  commutes size() / r1  <> size() / r2  when true;
}
|}

let set_src =
  {|
object set {
  method add(x) / was;
  method remove(x) / was;
  method contains(x) / b;
  method size() / r;

  commutes add(x1) / w1 <> add(x2) / w2
    when x1 != x2 || (w1 == true && w2 == true);
  commutes add(x1) / w1 <> remove(x2) / w2
    when x1 != x2;
  commutes add(x1) / w1 <> contains(x2) / b2
    when x1 != x2 || (w1 == true && b2 == true);
  commutes add(x1) / w1 <> size() / r2
    when w1 == true;
  commutes remove(x1) / w1 <> remove(x2) / w2
    when x1 != x2 || (w1 == false && w2 == false);
  commutes remove(x1) / w1 <> contains(x2) / b2
    when x1 != x2 || (w1 == false && b2 == false);
  commutes remove(x1) / w1 <> size() / r2
    when w1 == false;
  commutes contains(x1) / b1 <> contains(x2) / b2 when true;
  commutes contains(x1) / b1 <> size() / r2 when true;
  commutes size() / r1 <> size() / r2 when true;
}
|}

let counter_src =
  {|
object counter {
  method add(n);
  method read() / v;

  commutes add(n1) <> add(n2) when true;
  commutes add(n1) <> read() / v2 when false;
  commutes read() / v1 <> read() / v2 when true;
}
|}

let register_src =
  {|
object register {
  method write(v);
  method read() / v;

  commutes write(v1) <> write(v2) when false;
  commutes write(v1) <> read() / v2 when false;
  commutes read() / v1 <> read() / v2 when true;
}
|}

let fifo_src =
  {|
object fifo {
  method enq(x);
  method deq() / x;
  method peek() / x;

  commutes enq(x1) <> enq(x2) when false;
  commutes enq(x1) <> deq() / x2 when false;
  commutes enq(x1) <> peek() / x2 when x1 != x2 && x2 != nil;
  commutes deq() / x1 <> deq() / x2 when x1 == nil && x2 == nil;
  commutes deq() / x1 <> peek() / x2 when x1 == nil && x2 == nil;
  commutes peek() / x1 <> peek() / x2 when true;
}
|}

let bag_src =
  {|
object bag {
  method add(x);
  method remove(x) / ok;
  method count(x) / n;
  method size() / r;

  // Multiset insertions always commute (unlike set insertions, which
  // observe prior membership through their return value).
  commutes add(x1) <> add(x2) when true;
  commutes add(x1) <> remove(x2) / ok2 when x1 != x2;
  commutes add(x1) <> count(x2) / n2 when x1 != x2;
  commutes add(x1) <> size() / r2 when false;
  commutes remove(x1) / ok1 <> remove(x2) / ok2
    when x1 != x2 || (ok1 == false && ok2 == false);
  commutes remove(x1) / ok1 <> count(x2) / n2
    when x1 != x2 || ok1 == false;
  commutes remove(x1) / ok1 <> size() / r2 when ok1 == false;
  commutes count(x1) / n1 <> count(x2) / n2 when true;
  commutes count(x1) / n1 <> size() / r2 when true;
  commutes size() / r1 <> size() / r2 when true;
}
|}

(* Guards the lazy cells below: two domains racing on the first force
   of an OCaml 5 lazy raise CamlinternalLazy.Undefined in the loser,
   and concurrent server sessions do exactly that. *)
let memo_mu = Mutex.create ()

let memo src =
  let cell = lazy (
    match Crd_spec_parser.Parser.parse_one src with
    | Ok spec -> spec
    | Error e -> failwith ("Stdspecs: builtin specification is broken: " ^ e))
  in
  fun () ->
    Mutex.protect memo_mu (fun () -> Lazy.force cell)

let dictionary = memo dictionary_src
let set = memo set_src
let counter = memo counter_src
let register = memo register_src
let fifo = memo fifo_src
let bag = memo bag_src

let all () =
  [ dictionary (); set (); counter (); register (); fifo (); bag () ]

let find name =
  List.find_opt (fun s -> String.equal (Spec.name s) name) (all ())
