(** [Crd_fault] — deterministic fault injection.

    A process-wide registry of named {e injection points}. Code under
    test declares a point once ([let fp = Crd_fault.point "sock_read"])
    and consults it on every hit ([if Crd_fault.fire fp then ...] or
    [Crd_fault.inject fp]); what the fault {e does} — a short read, a
    corrupt frame, a crashed worker — is decided at the site, so the
    framework stays dependency-free and the sites stay honest about the
    failure mode they simulate.

    Every point is driven by a SplitMix64-style generator evaluated
    {e statelessly} at the point's hit index: whether hit [n] of point
    [p] injects is a pure function of [(seed, p, n)]. Two runs with the
    same [CRD_FAULTS] spec therefore make identical per-hit decisions,
    independent of thread interleaving across points — the property the
    chaos soak relies on. Hit counters are atomic; with every policy
    [Off] (the default) a point costs one [Atomic.get] per hit.

    Points publish [fault_injected_total] and
    [fault_injected_<point>_total] counters into {!Crd_obs.default}.

    {2 Specification grammar}

    Configured from the [CRD_FAULTS] environment variable or
    [rd2 serve --faults SPEC]:

    {v
    spec    ::= clause ( ',' clause )*
    clause  ::= 'seed=' INT                  (stream seed, default 1)
              | point '=' policy
    policy  ::= 'p:' FLOAT                   (inject each hit with prob. p)
              | 'once'                       (inject the first hit only)
              | 'nth:' N                     (inject exactly the Nth hit)
              | 'every:' N                   (inject every Nth hit)
              | 'off'
    v}

    Example: [seed=42,sock_read=p:0.01,worker_body=nth:3,queue_push=once].
    Unknown point names are accepted (the point may be registered by a
    library loaded later); misspelled names simply never fire. *)

exception Injected of string
(** Raised by {!inject}; carries the point name. *)

type policy =
  | Off
  | Prob of float  (** inject each hit independently with this probability *)
  | Once  (** inject the first hit only *)
  | Nth of int  (** inject exactly the [n]th hit (1-based) *)
  | Every of int  (** inject every [n]th hit *)

val pp_policy : Format.formatter -> policy -> unit
val policy_to_string : policy -> string

type point

val point : string -> point
(** Find-or-create the named injection point (thread-safe, idempotent).
    Names are restricted to [A-Za-z0-9_] so they embed into metric
    names. @raise Invalid_argument on an empty or malformed name. *)

val name : point -> string

val fire : point -> bool
(** Count one hit of this point and decide — deterministically from
    [(seed, point, hit index)] — whether to inject. [false] without
    counting when the policy is [Off]. *)

val inject : point -> unit
(** [inject p] raises [Injected (name p)] when {!fire} says so. *)

val set_policy : point -> policy -> unit
val policy : point -> policy

val hits : point -> int
(** Hits counted since the last {!configure}/{!reset}. *)

val injected_count : point -> int

val set_seed : int64 -> unit
(** Reset every point's hit and injection counters and restart all
    decision streams from this seed. *)

val seed : unit -> int64

val configure : string -> (unit, string) result
(** Parse a spec (grammar above) and apply it atomically: on success
    all counters reset, the seed is set, every registered point reverts
    to [Off] and the spec's policies are installed; on [Error] nothing
    changes. *)

val configure_env : unit -> (unit, string) result
(** {!configure} from [CRD_FAULTS]; [Ok ()] when unset or empty. *)

val reset : unit -> unit
(** Every policy [Off], all counters zero, seed back to the default. *)

val active : unit -> bool
(** At least one point has a policy other than [Off]. *)

val summary : unit -> (string * policy * int * int) list
(** [(name, policy, hits, injected)] per registered point, sorted by
    name — for logs and tests. *)
