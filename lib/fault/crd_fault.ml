exception Injected of string

type policy =
  | Off
  | Prob of float
  | Once
  | Nth of int
  | Every of int

let policy_to_string = function
  | Off -> "off"
  | Prob p -> Printf.sprintf "p:%g" p
  | Once -> "once"
  | Nth n -> Printf.sprintf "nth:%d" n
  | Every n -> Printf.sprintf "every:%d" n

let pp_policy ppf p = Format.pp_print_string ppf (policy_to_string p)

(* ------------------------------------------------------------------ *)
(* Stateless SplitMix64 decision streams                               *)
(* ------------------------------------------------------------------ *)

let golden = 0x9E3779B97F4A7C15L

(* The SplitMix64 output function: state n of a stream seeded at [s] is
   [s + n * golden], so the value at any hit index is computable without
   mutable generator state — decisions commute with thread scheduling. *)
let finalize z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let value_at stream n =
  finalize (Int64.add stream (Int64.mul golden (Int64.of_int n)))

(* 53 high bits into [0,1). *)
let u01 v =
  Int64.to_float (Int64.shift_right_logical v 11) /. 9007199254740992.0

(* FNV-1a so a point's stream depends only on its name (stable across
   runs and platforms, unlike [Hashtbl.hash]). *)
let fnv64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type point = {
  pname : string;
  policy : policy Atomic.t;
  hits : int Atomic.t;
  injected : int Atomic.t;
  metric : Crd_obs.Counter.t;
}

let default_seed = 1L
let global_seed = Atomic.make default_seed
let registry : (string, point) Hashtbl.t = Hashtbl.create 16
let mu = Mutex.create ()

let m_injected_total =
  Crd_obs.counter ~help:"Faults injected across all points"
    "fault_injected_total"

let valid_name s =
  String.length s > 0
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let point pname =
  if not (valid_name pname) then
    invalid_arg
      (Printf.sprintf "Crd_fault.point: bad name %S (want [A-Za-z0-9_]+)" pname);
  Mutex.lock mu;
  let p =
    match Hashtbl.find_opt registry pname with
    | Some p -> p
    | None ->
        let p =
          {
            pname;
            policy = Atomic.make Off;
            hits = Atomic.make 0;
            injected = Atomic.make 0;
            metric =
              Crd_obs.counter
                ~help:("Faults injected at the " ^ pname ^ " point")
                ("fault_injected_" ^ pname ^ "_total");
          }
        in
        Hashtbl.add registry pname p;
        p
  in
  Mutex.unlock mu;
  p

let name p = p.pname
let set_policy p policy = Atomic.set p.policy policy
let policy p = Atomic.get p.policy
let hits p = Atomic.get p.hits
let injected_count p = Atomic.get p.injected
let seed () = Atomic.get global_seed

let stream_of p = finalize (Int64.logxor (Atomic.get global_seed) (fnv64 p.pname))

let decide p n =
  match Atomic.get p.policy with
  | Off -> false
  | Once -> n = 1
  | Nth k -> n = k
  | Every k -> k > 0 && n mod k = 0
  | Prob pr -> u01 (value_at (stream_of p) n) < pr

let fire p =
  if Atomic.get p.policy = Off then false
  else begin
    let n = 1 + Atomic.fetch_and_add p.hits 1 in
    let inj = decide p n in
    if inj then begin
      Atomic.incr p.injected;
      Crd_obs.Counter.incr p.metric;
      Crd_obs.Counter.incr m_injected_total
    end;
    inj
  end

let inject p = if fire p then raise (Injected p.pname)

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

let iter_points f =
  Mutex.lock mu;
  let pts = Hashtbl.fold (fun _ p acc -> p :: acc) registry [] in
  Mutex.unlock mu;
  List.iter f pts

let zero p =
  Atomic.set p.hits 0;
  Atomic.set p.injected 0

let set_seed s =
  Atomic.set global_seed s;
  iter_points zero

let reset () =
  Atomic.set global_seed default_seed;
  iter_points (fun p ->
      Atomic.set p.policy Off;
      zero p)

let active () =
  let some = ref false in
  iter_points (fun p -> if Atomic.get p.policy <> Off then some := true);
  !some

let summary () =
  let acc = ref [] in
  iter_points (fun p ->
      acc :=
        (p.pname, Atomic.get p.policy, Atomic.get p.hits, Atomic.get p.injected)
        :: !acc);
  List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b) !acc

let parse_policy s =
  let prefixed prefix =
    let lp = String.length prefix in
    if String.length s > lp && String.sub s 0 lp = prefix then
      Some (String.sub s lp (String.length s - lp))
    else None
  in
  match s with
  | "off" -> Ok Off
  | "once" -> Ok Once
  | _ -> (
      match prefixed "p:" with
      | Some f -> (
          match float_of_string_opt f with
          | Some p when p >= 0.0 && p <= 1.0 -> Ok (Prob p)
          | _ -> Error (Printf.sprintf "bad probability %S (want 0..1)" f))
      | None -> (
          match prefixed "nth:" with
          | Some n -> (
              match int_of_string_opt n with
              | Some k when k >= 1 -> Ok (Nth k)
              | _ -> Error (Printf.sprintf "bad hit index %S (want >= 1)" n))
          | None -> (
              match prefixed "every:" with
              | Some n -> (
                  match int_of_string_opt n with
                  | Some k when k >= 1 -> Ok (Every k)
                  | _ ->
                      Error (Printf.sprintf "bad period %S (want >= 1)" n))
              | None ->
                  Error
                    (Printf.sprintf
                       "bad policy %S (want p:FLOAT, once, nth:N, every:N or \
                        off)"
                       s))))

(* Parse everything before touching any state, so a bad spec leaves the
   previous configuration untouched. *)
let parse spec =
  let clauses =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  let rec go seed policies = function
    | [] -> Ok (seed, List.rev policies)
    | clause :: rest -> (
        match String.index_opt clause '=' with
        | None ->
            Error
              (Printf.sprintf "clause %S: expected seed=INT or point=policy"
                 clause)
        | Some i -> (
            let key = String.sub clause 0 i in
            let value =
              String.sub clause (i + 1) (String.length clause - i - 1)
            in
            if key = "seed" then
              match Int64.of_string_opt value with
              | Some s -> go (Some s) policies rest
              | None -> Error (Printf.sprintf "bad seed %S" value)
            else if not (valid_name key) then
              Error
                (Printf.sprintf "bad point name %S (want [A-Za-z0-9_]+)" key)
            else
              match parse_policy value with
              | Ok p -> go seed ((key, p) :: policies) rest
              | Error e -> Error (Printf.sprintf "%s: %s" key e)))
  in
  go None [] clauses

let configure spec =
  match parse spec with
  | Error _ as e -> e
  | Ok (seed, policies) ->
      reset ();
      Atomic.set global_seed (Option.value ~default:default_seed seed);
      List.iter (fun (name, pol) -> set_policy (point name) pol) policies;
      Ok ()

let configure_env () =
  match Sys.getenv_opt "CRD_FAULTS" with
  | None | Some "" -> Ok ()
  | Some spec -> configure spec
