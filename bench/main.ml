(* Benchmark harness.

   Regenerates every empirical table/figure of the paper:

   - Table 2 (the only evaluation table): the six H2 Pole Position rows
     and the Cassandra DynamicEndpointSnitch row, under the three
     configurations (uninstrumented / FASTTRACK / RD2). Printed as a
     table (wall-clock qps) and measured as bechamel micro-benchmarks
     (analysis cost per recorded trace).
   - Fig 4 / Section 5.4: the access-point ablation. The same trace is
     analyzed with the O(1) constant-lookup detector, the linear-scan
     detector over active points, and the naive specification-level
     detector; the lookup counters make the Theta(1) vs Theta(|A|)
     claim measurable, and the scaling sweep shows per-action cost
     flat vs growing with trace length.
   - Fig 7 / Theorem 6.6: shape and conflict-bound statistics of the
     translated built-in specifications.

   Run with:  dune exec bench/main.exe
   Quick mode (skip bechamel timing):  dune exec bench/main.exe -- --tables-only
   Options:   --jobs N    shard count for the parallel-analysis benchmarks
              --out FILE  where to write the machine-readable results
                          (default BENCH_results.json)
              --quota S   bechamel time budget per benchmark in seconds
                          (default 0.25; raise for lower-noise numbers)
              --synth-only          only the synthetic parallel-speedup
                                    corpus (CI's bench-parallel-smoke)
              --synth-max-events N  drop synth rows above N events
              --compare FILE        print deltas against a previous JSON;
                                    fails if a synth parallel speedup fell
                                    below 70% of the previous run

   Alongside the printed tables the harness emits a JSON file recording
   ns-per-replay per benchmark, RD2 lookups/action and same-epoch hit
   rates per trace, and a sequential-vs-sharded report-identity check, so
   the perf trajectory is tracked across PRs. *)

open Bechamel
open Crd
module W = Crd_workloads

(* ------------------------------------------------------------------ *)
(* Recorded traces (built once, replayed by the benchmarks)            *)
(* ------------------------------------------------------------------ *)

let record_circuit circuit =
  let trace = Trace.create () in
  ignore (W.Polepos.run circuit ~seed:1L ~scale:1 ~sink:(Trace.append trace) ());
  trace

let record_snitch () =
  let trace = Trace.create () in
  ignore (W.Snitch.run ~seed:1L ~sink:(Trace.append trace) ());
  trace

(* All Table 2 traces, labeled with their benchmark path. *)
let table2_traces =
  lazy
    (List.map
       (fun circuit ->
         (Printf.sprintf "table2/h2/%s" (W.Polepos.name circuit),
          record_circuit circuit))
       W.Polepos.all
    @ [ ("table2/cassandra/snitch", record_snitch ()) ])

type mode = Uninstrumented | Fasttrack_mode | Rd2_mode

let mode_name = function
  | Uninstrumented -> "uninstrumented"
  | Fasttrack_mode -> "fasttrack"
  | Rd2_mode -> "rd2"

let rd2_config =
  { Analyzer.rd2 = `Constant; direct = false; fasttrack = true; djit = false; atomicity = false }

let replay mode trace () =
  match mode with
  | Uninstrumented ->
      (* Event dispatch without any analysis: the replay baseline. *)
      let n = ref 0 in
      Trace.iter_events trace ~f:(fun _ -> incr n);
      ignore !n
  | Fasttrack_mode ->
      let an =
        Analyzer.with_stdspecs
          ~config:{ Analyzer.rd2 = `Off; direct = false; fasttrack = true; djit = false; atomicity = false }
          ()
      in
      Analyzer.run_trace an trace
  | Rd2_mode ->
      let an = Analyzer.with_stdspecs ~config:rd2_config () in
      Analyzer.run_trace an trace

(* The sharded offline counterpart of the rd2 replay. [force] because
   benchmark traces must actually shard, whatever their size. *)
let replay_sharded jobs trace () =
  match Shard.analyze_stdspecs ~jobs ~force:true ~config:rd2_config trace with
  | Ok res -> ignore res.Shard.rd2_reports
  | Error e -> failwith e

let table2_tests ~jobs () =
  List.concat_map
    (fun (name, trace) ->
      List.map
        (fun mode ->
          Test.make
            ~name:(Printf.sprintf "%s/%s" name (mode_name mode))
            (Staged.stage (replay mode trace)))
        [ Uninstrumented; Fasttrack_mode; Rd2_mode ]
      @ [
          Test.make
            ~name:(Printf.sprintf "%s/rd2-jobs%d" name jobs)
            (Staged.stage (replay_sharded jobs trace));
        ])
    (Lazy.force table2_traces)

(* ------------------------------------------------------------------ *)
(* Fig 4 ablation: conflict checks per action                          *)
(* ------------------------------------------------------------------ *)

(* The Fig 4 scenario generalized: n successful puts (distinct keys)
   from worker threads followed by a size() — the invocation-level
   detector pays n checks for the size, the access-point detector one. *)
let fig4_trace n =
  let obj = Obj_id.make ~name:"dictionary:o" 0 in
  let trace = Trace.create () in
  let threads = 4 in
  for t = 1 to threads do
    Trace.append trace (Event.fork Tid.main (Tid.of_int t))
  done;
  for i = 0 to n - 1 do
    let tid = Tid.of_int (1 + (i mod threads)) in
    Trace.append trace
      (Event.call tid
         (Action.make ~obj ~meth:"put"
            ~args:[ Value.Int i; Value.Int 1 ]
            ~rets:[ Value.Nil ] ()))
  done;
  Trace.append trace
    (Event.call Tid.main
       (Action.make ~obj ~meth:"size" ~rets:[ Value.Int n ] ()));
  trace

let dict_spec = Stdspecs.dictionary ()
let dict_repr = Result.get_ok (Repr.of_spec dict_spec)
let dict_repr_raw = Result.get_ok (Repr.of_spec ~optimize:false dict_spec)

let run_rd2_on ?(repr = dict_repr) ?(mode = `Constant) trace =
  let hb = Hb.create () in
  let d = Rd2.create ~mode ~repr_for:(fun _ -> Some repr) () in
  Trace.iter trace ~f:(fun index (e : Event.t) ->
      let vc = Hb.step hb e in
      match e.op with
      | Event.Call a -> ignore (Rd2.on_action d ~index e.tid a vc)
      | _ -> ());
  d

let run_direct_on trace =
  let hb = Hb.create () in
  let d = Direct.create ~spec_for:(fun _ -> Some dict_spec) () in
  Trace.iter trace ~f:(fun index (e : Event.t) ->
      let vc = Hb.step hb e in
      match e.op with
      | Event.Call a -> ignore (Direct.on_action d ~index e.tid a vc)
      | _ -> ());
  d

let ablation_tests () =
  List.concat_map
    (fun n ->
      let trace = fig4_trace n in
      [
        Test.make
          ~name:(Printf.sprintf "fig4/apoint-constant/n=%d" n)
          (Staged.stage (fun () -> ignore (run_rd2_on ~mode:`Constant trace)));
        Test.make
          ~name:(Printf.sprintf "fig4/apoint-linear/n=%d" n)
          (Staged.stage (fun () -> ignore (run_rd2_on ~mode:`Linear trace)));
        Test.make
          ~name:(Printf.sprintf "fig4/direct/n=%d" n)
          (Staged.stage (fun () -> ignore (run_direct_on trace)));
        (* Appendix A.3 ablation: the same detector over the raw
           (unsimplified) Section 6.2 representation. *)
        Test.make
          ~name:(Printf.sprintf "a3/raw-repr/n=%d" n)
          (Staged.stage (fun () ->
               ignore (run_rd2_on ~repr:dict_repr_raw ~mode:`Constant trace)));
      ])
    [ 100; 400 ]

(* ------------------------------------------------------------------ *)
(* Bechamel driver                                                     *)
(* ------------------------------------------------------------------ *)

(* Prints each estimate as it completes and returns the (name, ns) pairs
   for the JSON emission. *)
let print_bench_results ~quota tests =
  Fmt.pr "## Bechamel micro-benchmarks (ns per replay)@.@.";
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second quota) () in
  List.concat_map
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock raw
      in
      Hashtbl.fold
        (fun name ols acc ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
              Fmt.pr "%-56s %14.0f ns@." name est;
              (name, est) :: acc
          | _ ->
              Fmt.pr "%-56s (no estimate)@." name;
              acc)
        results [])
    tests

(* ------------------------------------------------------------------ *)
(* Machine-readable results (BENCH_results.json)                       *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Per-trace RD2 hot-path statistics from one sequential sharded replay,
   plus the sequential-vs-parallel report-identity check. *)
type trace_record = {
  tr_name : string;
  tr_events : int;
  tr_actions : int;
  tr_lookups : int;
  tr_same_epoch : int;
  tr_rd2_races : int;
  tr_rd2_ns : float;  (** best-of-N wall clock, sequential RD2 replay *)
  tr_identical : bool;  (** jobs=1 and jobs=N reports structurally equal *)
}

(* Wall-clock best-of-N, shared by the trace, synth, codec, server and
   racedb sections. *)
let best_of_ns n f =
  let best = ref infinity in
  for _ = 1 to n do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = (Unix.gettimeofday () -. t0) *. 1e9 in
    if dt < !best then best := dt
  done;
  !best

let trace_records ~jobs =
  List.map
    (fun (name, trace) ->
      let analyze jobs =
        match
          Shard.analyze_stdspecs ~jobs ~force:true ~config:rd2_config trace
        with
        | Ok res -> res
        | Error e -> failwith e
      in
      let seq = analyze 1 in
      let par = analyze jobs in
      let identical =
        seq.Shard.rd2_reports = par.Shard.rd2_reports
        && seq.Shard.fasttrack_reports = par.Shard.fasttrack_reports
      in
      let s =
        match seq.Shard.rd2_stats with
        | Some s -> s
        | None ->
            {
              Rd2.actions = 0;
              lookups = 0;
              races = 0;
              same_epoch = 0;
              promotions = 0;
              deflations = 0;
            }
      in
      {
        tr_name = name;
        tr_events = seq.Shard.events;
        tr_actions = s.Rd2.actions;
        tr_lookups = s.Rd2.lookups;
        tr_same_epoch = s.Rd2.same_epoch;
        tr_rd2_races = List.length seq.Shard.rd2_reports;
        tr_rd2_ns = best_of_ns 3 (fun () -> ignore (analyze 1));
        tr_identical = identical;
      })
    (Lazy.force table2_traces)

(* ------------------------------------------------------------------ *)
(* Synthetic traces — where parallel analysis has to win               *)
(* ------------------------------------------------------------------ *)

(* The Table 2 traces top out at ~100k events, too small for domain
   fan-out to beat its setup cost. The synth corpus measures sharded
   analysis on traces big enough to matter, at two contention skews.
   Best-of-N wall clock (not bechamel): one replay of the 2M-event row
   is seconds, so OLS over many runs is unaffordable. *)
let synth_corpus =
  [
    ("synth/uniform/200k", W.Synth.Uniform, 200_000);
    ("synth/zipf/200k", W.Synth.Zipf 0.9, 200_000);
    ("synth/zipf/2m", W.Synth.Zipf 0.9, 2_000_000);
  ]

let synth_jobs = [ 2; 4 ]

type synth_record = {
  sy_name : string;
  sy_events : int;
  sy_rd2_races : int;
  sy_seq_ns : float;
  sy_jobs_ns : (int * float) list;  (** jobs -> best-of-N wall clock *)
  sy_identical : bool;  (** parallel reports == sequential reports *)
}

let synth_speedup sy jobs =
  match List.assoc_opt jobs sy.sy_jobs_ns with
  | Some ns when ns > 0. -> Some (sy.sy_seq_ns /. ns)
  | _ -> None

(* The headline number: the best speedup any shard count achieves. *)
let synth_parallel_speedup sy =
  List.fold_left
    (fun acc jobs ->
      match synth_speedup sy jobs with
      | Some s -> Float.max acc s
      | None -> acc)
    0. synth_jobs

let synth_records ?(max_events = max_int) () =
  let corpus =
    List.filter (fun (_, _, events) -> events <= max_events) synth_corpus
  in
  List.map
    (fun (name, skew, events) ->
      let config = { (W.Synth.default ~events) with W.Synth.skew } in
      let trace = W.Synth.generate ~seed:7L config in
      let analyze jobs =
        match
          Shard.analyze_stdspecs ~jobs ~force:true ~config:rd2_config trace
        with
        | Ok res -> res
        | Error e -> failwith (name ^ ": " ^ e)
      in
      let repeats = if events > 500_000 then 2 else 3 in
      let seq = analyze 1 in
      let par = analyze 2 in
      let identical =
        seq.Shard.rd2_reports = par.Shard.rd2_reports
        && seq.Shard.fasttrack_reports = par.Shard.fasttrack_reports
      in
      let sy_seq_ns = best_of_ns repeats (fun () -> ignore (analyze 1)) in
      let sy_jobs_ns =
        List.map
          (fun jobs ->
            (jobs, best_of_ns repeats (fun () -> ignore (analyze jobs))))
          synth_jobs
      in
      {
        sy_name = name;
        sy_events = events;
        sy_rd2_races = List.length seq.Shard.rd2_reports;
        sy_seq_ns;
        sy_jobs_ns;
        sy_identical = identical;
      })
    corpus

let print_synth_table synth =
  Fmt.pr "@.## Synthetic traces — parallel speedup (best-of-N wall clock)@.@.";
  Fmt.pr "%-24s %9s %10s %12s" "trace" "events" "seq ms" "seq ev/s";
  List.iter (fun j -> Fmt.pr " %9s" (Printf.sprintf "jobs%d x" j)) synth_jobs;
  Fmt.pr " %8s@." "jobs-ok";
  List.iter
    (fun sy ->
      Fmt.pr "%-24s %9d %10.1f %12.0f" sy.sy_name sy.sy_events
        (sy.sy_seq_ns /. 1e6)
        (float_of_int sy.sy_events /. sy.sy_seq_ns *. 1e9);
      List.iter
        (fun j ->
          match synth_speedup sy j with
          | Some s -> Fmt.pr " %8.2fx" s
          | None -> Fmt.pr " %9s" "-")
        synth_jobs;
      Fmt.pr " %8b@." sy.sy_identical)
    synth

(* ------------------------------------------------------------------ *)
(* Wire codec throughput (wall clock, best-of-N)                       *)
(* ------------------------------------------------------------------ *)

(* Deliberately independent of bechamel so the codec numbers appear in
   the JSON on every run, including --tables-only / @bench-smoke. *)
type codec_record = {
  co_name : string;
  co_events : int;
  co_text_bytes : int;
  co_bin_bytes : int;
  co_encode_ns : float;
  co_decode_ns : float;  (** legacy string decoder *)
  co_big_ns : float;  (** zero-copy bigstring decoder on the same bytes *)
  co_stream_ns : float;  (** legacy streaming decode: 64 KiB feeds, push *)
  co_stream_big_ns : float;  (** zero-copy streaming decode over the slice *)
}

let mb_per_s bytes ns = float_of_int bytes /. ns *. 1e9 /. 1e6
let per_s count ns = float_of_int count /. ns *. 1e9

(* The codec corpus: the Table 2 traces (tens of KB — fixed decoder
   overheads dominate) plus one synthetic trace at ingest scale, where
   the zero-copy path's per-event wins show. *)
let codec_records ?(repeats = 5) ?(synth_events = 200_000) () =
  let corpus =
    Lazy.force table2_traces
    @ [
        ( Printf.sprintf "synth/uniform/%dk" (synth_events / 1000),
          W.Synth.generate ~seed:7L (W.Synth.default ~events:synth_events) );
      ]
  in
  List.map
    (fun (name, trace) ->
      let text = Trace_text.to_string trace in
      let bin = Wire.encode_trace trace in
      (match Wire.decode_string bin with
      | Ok t when Trace.length t = Trace.length trace -> ()
      | Ok _ -> failwith (name ^ ": codec round-trip changed the event count")
      | Error e -> failwith (name ^ ": " ^ Wire.error_to_string e));
      (* Differential guard: timing a decoder that produces different
         events would be meaningless. *)
      let big = Bigwire.bigstring_of_string bin in
      (match (Bigwire.decode_bigstring big, Wire.decode_string bin) with
      | Ok a, Ok b when Trace.to_list a = Trace.to_list b -> ()
      | Ok _, Ok _ -> failwith (name ^ ": bigstring decode diverged from legacy")
      | Error e, _ | _, Error e -> failwith (name ^ ": " ^ Wire.error_to_string e));
      (* Streaming decode, the server-ingest shape: events are handed to
         a consumer and dropped, not accumulated into a trace. The
         legacy decoder is fed in 64 KiB slices (what a socket read
         loop gives it) and pays its per-feed list; the zero-copy
         decoder streams straight off the slice. *)
      let stream_legacy () =
        let dec = Wire.Decoder.create () in
        let n = String.length bin in
        let pos = ref 0 in
        while !pos < n do
          let len = min 65536 (n - !pos) in
          (match Wire.Decoder.feed dec ~off:!pos ~len bin with
          | Ok events -> List.iter ignore events
          | Error e -> failwith (name ^ ": " ^ Wire.error_to_string e));
          pos := !pos + len
        done
      in
      let stream_big () =
        match Bigwire.iter_bigstring big ~f:ignore with
        | Ok () -> ()
        | Error e -> failwith (name ^ ": " ^ Wire.error_to_string e)
      in
      {
        co_name = name;
        co_events = Trace.length trace;
        co_text_bytes = String.length text;
        co_bin_bytes = String.length bin;
        co_encode_ns =
          best_of_ns repeats (fun () -> ignore (Wire.encode_trace trace));
        co_decode_ns =
          best_of_ns repeats (fun () -> ignore (Wire.decode_string bin));
        co_big_ns =
          best_of_ns repeats (fun () -> ignore (Bigwire.decode_bigstring big));
        co_stream_ns = best_of_ns repeats stream_legacy;
        co_stream_big_ns = best_of_ns repeats stream_big;
      })
    corpus

let big_decode_speedup c = c.co_decode_ns /. c.co_big_ns
let big_stream_speedup c = c.co_stream_ns /. c.co_stream_big_ns

let print_codec_table codec =
  Fmt.pr "@.## Wire codec throughput (best-of-N wall clock)@.@.";
  Fmt.pr "%-44s %8s %9s %10s %10s %10s %6s %10s %10s %7s@." "trace" "events"
    "bytes" "enc MB/s" "dec MB/s" "big MB/s" "big x" "strm MB/s" "bstrm MB/s"
    "strm x";
  List.iter
    (fun c ->
      Fmt.pr "%-44s %8d %9d %10.1f %10.1f %10.1f %5.2fx %10.1f %10.1f %6.2fx@."
        c.co_name c.co_events c.co_bin_bytes
        (mb_per_s c.co_bin_bytes c.co_encode_ns)
        (mb_per_s c.co_bin_bytes c.co_decode_ns)
        (mb_per_s c.co_bin_bytes c.co_big_ns)
        (big_decode_speedup c)
        (mb_per_s c.co_bin_bytes c.co_stream_ns)
        (mb_per_s c.co_bin_bytes c.co_stream_big_ns)
        (big_stream_speedup c))
    codec

(* The bench-smoke gate: the zero-copy decoder must beat the legacy
   decoder in aggregate over the Table 2 corpus — in every run, not
   just when a baseline file is at hand. Aggregated because the
   smallest rows are tens of microseconds and individually noisy. *)
let assert_big_decoder_wins codec =
  let sum f = List.fold_left (fun a c -> a +. f c) 0. codec in
  let check label legacy big =
    if codec <> [] && big >= legacy then
      failwith
        (Printf.sprintf
           "codec_big regression: bigstring %s decode (%.0f ns total) is not \
            faster than the legacy decoder (%.0f ns total)"
           label big legacy)
  in
  check "full" (sum (fun c -> c.co_decode_ns)) (sum (fun c -> c.co_big_ns));
  check "streaming"
    (sum (fun c -> c.co_stream_ns))
    (sum (fun c -> c.co_stream_big_ns))

(* ------------------------------------------------------------------ *)
(* Server round trip (in-process, Unix socket)                         *)
(* ------------------------------------------------------------------ *)

(* Wall-clock ns for a full session: connect, handshake, stream the
   snitch trace through the codec, online RD2 analysis server-side,
   race report back. With [journal] set the same session also appends
   every chunk to a session journal and fsyncs a commit marker — the
   cost of crash safety, reported as a separate row. *)
let server_roundtrip ?journal ?(repeats = 3) ?(tag = "") ?trace () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "crd-bench-%d%s%s.sock" (Unix.getpid ())
         (match journal with Some _ -> "-j" | None -> "")
         tag)
  in
  let addr = Crd_server.Server.Unix_sock path in
  let config = { (Crd_server.Server.default_config ~addr) with journal } in
  match Crd_server.Server.start config with
  | Error e -> failwith ("server benchmark: " ^ e)
  | Ok server ->
      let trace = match trace with Some t -> t | None -> record_snitch () in
      let run () =
        match Crd_server.Client.send_trace ~addr trace with
        | Ok _ -> ()
        | Error e -> failwith ("server benchmark: " ^ e)
      in
      run () (* warm-up: first session pays domain/socket setup *);
      let ns = best_of_ns repeats run in
      ignore (Crd_server.Server.stop server);
      (ns, Trace.length trace)

(* ------------------------------------------------------------------ *)
(* Sustained overload (spill-tier acceptance rate)                     *)
(* ------------------------------------------------------------------ *)

type overload_record = {
  ov_clients : int;
  ov_events : int;  (** per client *)
  ov_burst_ns : float;  (** wall clock until every concurrent session is acked *)
  ov_spilled : int;
  ov_caught_up : int;
}

let overload_accepted_events_s ov =
  per_s (ov.ov_clients * ov.ov_events) ov.ov_burst_ns

(* [clients] concurrent sessions against one worker with the smallest
   spill watermark: all but the first are acked through the spill tier
   at decoder-plus-journal speed, so the acceptance rate measures the
   degradation ladder's ingest path, not the analyzer. The catch-up
   drain runs after the timed window (stop waits for it) — spilled
   evidence is analyzed, just not on the clients' clock. *)
let sustained_overload ?(clients = 4) ~events () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "crd-bench-%d-ov.sock" (Unix.getpid ()))
  in
  let jdir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "crd-bench-ov-journal-%d" (Unix.getpid ()))
  in
  let addr = Crd_server.Server.Unix_sock path in
  let config =
    {
      (Crd_server.Server.default_config ~addr) with
      workers = 1;
      spill_watermark = 1;
      journal = Some jdir;
    }
  in
  match Crd_server.Server.start config with
  | Error e -> failwith ("overload benchmark: " ^ e)
  | Ok server ->
      let trace = W.Synth.generate ~seed:7L (W.Synth.default ~events) in
      let send i =
        match
          Crd_server.Client.send_trace ~addr
            ~nonce:(Printf.sprintf "bench-ov-%d" i)
            trace
        with
        | Ok _ -> ()
        | Error e -> failwith ("overload benchmark: " ^ e)
      in
      send 0 (* warm-up: first session pays domain/socket setup *);
      let t0 = Unix.gettimeofday () in
      let threads =
        List.init clients (fun i -> Thread.create (fun () -> send (i + 1)) ())
      in
      List.iter Thread.join threads;
      let burst_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
      let st = Crd_server.Server.stop server in
      {
        ov_clients = clients;
        ov_events = Trace.length trace;
        ov_burst_ns = burst_ns;
        ov_spilled = st.Crd_server.Server.spilled;
        ov_caught_up = st.Crd_server.Server.caught_up;
      }

(* ------------------------------------------------------------------ *)
(* Race database: ingest throughput and query latency                  *)
(* ------------------------------------------------------------------ *)

type racedb_record = {
  rb_reports : int;
  rb_ingest_ns : float;  (** full lifecycle: open, append all, close *)
  rb_ingest_plain_ns : float;  (** same with [~rollups:false] *)
  rb_query_ns : float;  (** cold [Db.load] + [select ~top:10] *)
  rb_distinct : int;
}

let rec rm_rf p =
  match Unix.lstat p with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
  | _ -> Unix.unlink p
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let racedb_bench ?(reports = 2000) ?(repeats = 3) () =
  let races =
    let an = Analyzer.with_stdspecs () in
    Trace.iter_events (record_snitch ()) ~f:(Analyzer.sink an);
    Array.of_list (Analyzer.rd2_races an)
  in
  if Array.length races = 0 then failwith "racedb benchmark: snitch found no races";
  let records =
    Array.init reports (fun i ->
        Crd_racedb.Record.make
          ~ts:(float_of_int i /. 50.)
          ~spec:"std"
          races.(i mod Array.length races))
  in
  let dir_counter = ref 0 in
  let fresh_dir () =
    incr dir_counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "crd-bench-racedb-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  (* every timed run ingests into a brand-new store; the previous one
     is removed first so only the last survives for the query phase *)
  let ingest ~rollups =
    let last = ref None in
    let ns =
      best_of_ns repeats (fun () ->
          Option.iter rm_rf !last;
          let dir = fresh_dir () in
          last := Some dir;
          match Crd_racedb.Db.open_db ~rollups dir with
          | Error e -> failwith ("racedb benchmark: " ^ e)
          | Ok db ->
              Array.iter (Crd_racedb.Db.append db) records;
              Crd_racedb.Db.close db)
    in
    (ns, Option.get !last)
  in
  let rb_ingest_ns, dir = ingest ~rollups:true in
  let rb_ingest_plain_ns, plain_dir = ingest ~rollups:false in
  rm_rf plain_dir;
  let rb_distinct = ref 0 in
  let rb_query_ns =
    best_of_ns repeats (fun () ->
        match Crd_racedb.Db.load dir with
        | Error e -> failwith ("racedb benchmark: " ^ e)
        | Ok view ->
            rb_distinct :=
              List.length
                (Crd_racedb.Db.select ~top:10 view.Crd_racedb.Db.v_entries))
  in
  rm_rf dir;
  {
    rb_reports = reports;
    rb_ingest_ns;
    rb_ingest_plain_ns;
    rb_query_ns;
    rb_distinct = !rb_distinct;
  }

(* ------------------------------------------------------------------ *)
(* Predictive pass — predicted-race uplift over the witnessed set      *)
(* ------------------------------------------------------------------ *)

type predict_record = {
  pu_name : string;
  pu_events : int;
  pu_witnessed : int;  (* distinct witnessed fingerprints *)
  pu_predicted : int;  (* predicted-only fingerprints on top of those *)
  pu_candidates : int;
  pu_capped : int;
  pu_ns : float;
}

(* The Table 2 corpus plus one contended synthetic trace (every 16th
   operation under a lock — the regime where sound reorderings actually
   unshadow races). Counts are deterministic; only [pu_ns] is timing. *)
let predict_records ~max_events () =
  let distinct reports =
    List.length
      (List.sort_uniq String.compare
         (List.map Report.fingerprint_hex reports))
  in
  let contended =
    let events = min 50_000 (max 10_000 max_events) in
    W.Synth.generate ~seed:7L
      { (W.Synth.default ~events) with W.Synth.sync_period = 16 }
  in
  List.map
    (fun (name, trace) ->
      let run () =
        match Predict.analyze_stdspecs trace with
        | Ok r -> r
        | Error e -> failwith ("predict benchmark: " ^ e)
      in
      let r = run () in
      {
        pu_name = name;
        pu_events = r.Predict.stats.Predict.events;
        pu_witnessed = distinct r.Predict.witnessed;
        pu_predicted = List.length r.Predict.predicted;
        pu_candidates = r.Predict.stats.Predict.candidates;
        pu_capped = r.Predict.stats.Predict.capped;
        pu_ns = best_of_ns 3 (fun () -> ignore (run ()));
      })
    (Lazy.force table2_traces @ [ ("synth/contended", contended) ])

let print_predict_table predict =
  Fmt.pr "@.## Predictive pass (rd2 predict) — predicted-race uplift@.@.";
  Fmt.pr "%-44s %10s %10s %10s %10s %12s@." "trace" "events" "witnessed"
    "predicted" "capped" "events/s";
  List.iter
    (fun p ->
      Fmt.pr "%-44s %10d %10d %10d %10d %12.0f@." p.pu_name p.pu_events
        p.pu_witnessed p.pu_predicted p.pu_capped
        (per_s p.pu_events p.pu_ns))
    predict

(* ------------------------------------------------------------------ *)
(* Comparing runs                                                      *)
(* ------------------------------------------------------------------ *)

(* 5: codec rows gained big_decode_* / streaming-decode fields, new flat
   codec_big_speedup section, server section gained the synth ingest
   row, traces rows are marked forced_parallel.
   6: new flat overload section (sustained_overload acceptance rate,
   gated by --compare).
   7: new predict section (per-trace predictive-pass rows) and flat
   predict_uplift section (predicted-only race counts, gated by
   --compare). *)
let schema_version = 7

(* Minimal reader for our own BENCH_results.json — just enough for
   --compare, not a general JSON parser. Returns the file's
   schema_version, its benchmarks_ns pairs, and its synth_speedup and
   codec_big_speedup pairs (flat key: number sections). *)
let load_results path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error e -> Error e
  | lines ->
      let schema = ref None in
      let section = ref "" in
      let bench = ref [] in
      let speedups = ref [] in
      let big_speedups = ref [] in
      let overload = ref [] in
      let uplift = ref [] in
      List.iter
        (fun line ->
          let line = String.trim line in
          let line =
            if String.length line > 0 && line.[String.length line - 1] = ','
            then String.sub line 0 (String.length line - 1)
            else line
          in
          if String.length line > 0 && line.[0] = '}' then section := ""
          else
            match String.index_opt line ':' with
            | Some i when String.length line > 2 && line.[0] = '"' ->
                let key = String.sub line 1 (String.rindex_from line i '"' - 1) in
                let value =
                  String.trim (String.sub line (i + 1) (String.length line - i - 1))
                in
                if String.equal value "{" then section := key
                else if String.equal key "schema_version" then
                  schema := int_of_string_opt value
                else if String.equal !section "benchmarks_ns" then
                  Option.iter
                    (fun v -> bench := (key, v) :: !bench)
                    (float_of_string_opt value)
                else if String.equal !section "synth_speedup" then
                  Option.iter
                    (fun v -> speedups := (key, v) :: !speedups)
                    (float_of_string_opt value)
                else if String.equal !section "codec_big_speedup" then
                  Option.iter
                    (fun v -> big_speedups := (key, v) :: !big_speedups)
                    (float_of_string_opt value)
                else if String.equal !section "overload" then
                  Option.iter
                    (fun v -> overload := (key, v) :: !overload)
                    (float_of_string_opt value)
                else if String.equal !section "predict_uplift" then
                  Option.iter
                    (fun v -> uplift := (key, v) :: !uplift)
                    (float_of_string_opt value)
            | _ -> ())
        lines;
      match !schema with
      | None -> Error (path ^ ": no schema_version field (pre-versioning run?)")
      | Some v ->
          Ok
            ( v,
              List.rev !bench,
              List.rev !speedups,
              List.rev !big_speedups,
              List.rev !overload,
              List.rev !uplift )

(* The flat synth_speedup keys this run produces (mirrored in the JSON
   emission below, and matched by key against the previous file). *)
let synth_speedup_pairs synth =
  List.concat_map
    (fun sy ->
      List.filter_map
        (fun jobs ->
          Option.map
            (fun s -> (Printf.sprintf "%s/speedup_jobs%d" sy.sy_name jobs, s))
            (synth_speedup sy jobs))
        synth_jobs
      @ [ (sy.sy_name ^ "/parallel_speedup", synth_parallel_speedup sy) ])
    synth

(* The flat codec_big_speedup keys: legacy-vs-bigstring decode ratio per
   Table 2 trace. Gated by --compare like the synth speedups, but never
   skipped — single-threaded decode throughput does not depend on the
   host's core count. *)
let codec_big_speedup_pairs codec =
  List.concat_map
    (fun c ->
      [
        (c.co_name ^ "/big_decode_speedup", big_decode_speedup c);
        (c.co_name ^ "/big_stream_speedup", big_stream_speedup c);
      ])
    codec

(* The flat overload keys: the spill-tier acceptance rate from the
   sustained_overload burst. Gated by --compare — a ladder change that
   drags spill ingest below decoder speed (e.g. analysis sneaking back
   onto the admission path) regresses this rate far beyond tolerance. *)
let overload_pairs ov =
  match ov with
  | None -> []
  | Some ov ->
      [
        ( "sustained_overload/accepted_events_s",
          overload_accepted_events_s ov );
      ]

(* The flat predict_uplift keys: distinct predicted-only races per
   trace. Deterministic counts (same seed, same closure), so the 70%
   gate only fires when a closure-construction change actually loses
   predicted races — never from host noise. *)
let predict_uplift_pairs predict =
  List.map
    (fun p -> (p.pu_name ^ "/predicted", float_of_int p.pu_predicted))
    predict

(* A parallel-speedup regression below this fraction of the previous run
   fails --compare. Generous on purpose: wall-clock speedups on shared
   CI hardware are noisy, and a 1-core box caps every speedup near 1.0 —
   the gate exists to catch the sharding path collapsing (e.g. a
   serializing bug), not 10% jitter. *)
let speedup_regression_tolerance = 0.7

(* Refuses to compare across schema versions; otherwise prints the
   per-benchmark delta of this run against the previous file, and fails
   when a synth parallel speedup or a codec big-decode speedup regressed
   below tolerance. Only [synth/*] keys feed the parallel gate: the
   table2 rd2-jobsN benchmark rows force sharding onto traces far too
   small to win, so their ratios are noise, not signal. *)
let compare_results ~prev_path ~benchmarks ~synth ~codec ~overload ~predict =
  match load_results prev_path with
  | Error e -> Error ("--compare: " ^ e)
  | Ok (prev_schema, _, _, _, _, _) when prev_schema <> schema_version ->
      Error
        (Printf.sprintf
           "--compare: %s has schema_version %d but this harness writes %d; \
            regenerate the baseline before comparing"
           prev_path prev_schema schema_version)
  | Ok (_, prev_bench, prev_speedups, prev_big, prev_overload, prev_uplift)
    ->
      Fmt.pr "@.## Comparison against %s@.@." prev_path;
      if benchmarks = [] then
        Fmt.pr "(no bechamel benchmarks in this run — --tables-only?)@."
      else begin
        Fmt.pr "%-56s %14s %14s %8s@." "benchmark" "prev ns" "now ns" "ratio";
        List.iter
          (fun (name, now) ->
            match List.assoc_opt name prev_bench with
            | None -> Fmt.pr "%-56s %14s %14.0f %8s@." name "-" now "new"
            | Some prev ->
                Fmt.pr "%-56s %14.0f %14.0f %7.2fx@." name prev now (now /. prev))
          benchmarks
      end;
      let gate ~label ~prev pairs regressions =
        if pairs <> [] then begin
          Fmt.pr "@.%-44s %10s %10s %8s@." label "prev" "now" "ok";
          List.iter
            (fun (key, now) ->
              match List.assoc_opt key prev with
              | None -> Fmt.pr "%-44s %10s %10.2f %8s@." key "-" now "new"
              | Some p ->
                  let ok = p <= 0. || now >= p *. speedup_regression_tolerance in
                  if not ok then regressions := key :: !regressions;
                  Fmt.pr "%-44s %10.2f %10.2f %8b@." key p now ok)
            pairs
        end
      in
      let synth_regr = ref []
      and big_regr = ref []
      and ov_regr = ref []
      and up_regr = ref [] in
      gate ~label:"synth speedup" ~prev:prev_speedups
        (List.filter
           (fun (k, _) -> String.length k >= 6 && String.sub k 0 6 = "synth/")
           (synth_speedup_pairs synth))
        synth_regr;
      gate ~label:"codec big-decode speedup" ~prev:prev_big
        (codec_big_speedup_pairs codec)
        big_regr;
      gate ~label:"overload acceptance (events/s)" ~prev:prev_overload
        (overload_pairs overload) ov_regr;
      gate ~label:"predicted-race uplift" ~prev:prev_uplift
        (predict_uplift_pairs predict) up_regr;
      let synth_regr =
        if !synth_regr <> [] && Domain.recommended_domain_count () < 2 then begin
          (* A 1-core box caps every parallel speedup near 1.0 — any
             baseline recorded on real hardware would "regress". Report,
             but do not gate. *)
          Fmt.pr
            "@.(parallel speedup gate skipped: this host recommends %d \
             domain(s), parallel speedups are meaningless here)@."
            (Domain.recommended_domain_count ());
          []
        end
        else List.rev !synth_regr
      in
      match
        synth_regr @ List.rev !big_regr @ List.rev !ov_regr
        @ List.rev !up_regr
      with
      | [] -> Ok ()
      | regressions ->
          Error
            (Printf.sprintf
               "--compare: speedup regressed below %.0f%% of the previous \
                run: %s"
               (100. *. speedup_regression_tolerance)
               (String.concat ", " regressions))

let write_json ~path ~jobs ~benchmarks ~traces ~synth ~codec ~server
    ~server_journal ~server_ingest ~overload ~predict ~racedb =
  let oc = open_out path in
  let pr fmt = Printf.fprintf oc fmt in
  let rate a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
  pr "{\n";
  pr "  \"schema_version\": %d,\n" schema_version;
  pr "  \"jobs\": %d,\n" jobs;
  pr "  \"host_domains\": %d,\n" (Domain.recommended_domain_count ());
  pr "  \"benchmarks_ns\": {";
  List.iteri
    (fun i (name, ns) ->
      pr "%s\n    \"%s\": %.1f" (if i = 0 then "" else ",") (json_escape name) ns)
    benchmarks;
  pr "%s  },\n" (if benchmarks = [] then "" else "\n");
  pr "  \"traces\": {";
  List.iteri
    (fun i t ->
      pr "%s\n    \"%s\": {\n" (if i = 0 then "" else ",") (json_escape t.tr_name);
      pr "      \"events\": %d,\n" t.tr_events;
      pr "      \"rd2_actions\": %d,\n" t.tr_actions;
      pr "      \"rd2_lookups\": %d,\n" t.tr_lookups;
      pr "      \"rd2_lookups_per_action\": %.4f,\n" (rate t.tr_lookups t.tr_actions);
      pr "      \"rd2_same_epoch\": %d,\n" t.tr_same_epoch;
      pr "      \"rd2_same_epoch_rate\": %.4f,\n" (rate t.tr_same_epoch t.tr_actions);
      pr "      \"rd2_races\": %d,\n" t.tr_rd2_races;
      pr "      \"rd2_ns\": %.0f,\n" t.tr_rd2_ns;
      pr "      \"events_per_sec\": %.0f,\n" (per_s t.tr_events t.tr_rd2_ns);
      (* The jobs2 identity check (and the rd2-jobsN benchmark rows over
         these traces) force sharding onto traces far below the parallel
         threshold: correctness signal, not a speedup claim. *)
      pr "      \"forced_parallel\": true,\n";
      pr "      \"sharded_reports_identical\": %b\n" t.tr_identical;
      pr "    }")
    traces;
  pr "\n  },\n";
  (* Flat by design: the --compare reader tracks exactly one level of
     section nesting, so speedups live in their own key:number map. *)
  pr "  \"synth_speedup\": {";
  List.iteri
    (fun i (key, s) ->
      pr "%s\n    \"%s\": %.3f" (if i = 0 then "" else ",") (json_escape key) s)
    (synth_speedup_pairs synth);
  pr "%s  },\n" (if synth = [] then "" else "\n");
  pr "  \"synth\": {";
  List.iteri
    (fun i sy ->
      pr "%s\n    \"%s\": {\n" (if i = 0 then "" else ",") (json_escape sy.sy_name);
      pr "      \"events\": %d,\n" sy.sy_events;
      pr "      \"rd2_races\": %d,\n" sy.sy_rd2_races;
      pr "      \"seq_ns\": %.0f,\n" sy.sy_seq_ns;
      pr "      \"events_per_sec\": %.0f,\n" (per_s sy.sy_events sy.sy_seq_ns);
      List.iter
        (fun (j, ns) ->
          pr "      \"jobs%d_ns\": %.0f,\n" j ns;
          pr "      \"jobs%d_events_per_sec\": %.0f,\n" j
            (per_s sy.sy_events ns))
        sy.sy_jobs_ns;
      pr "      \"parallel_speedup\": %.3f,\n" (synth_parallel_speedup sy);
      pr "      \"sharded_reports_identical\": %b\n" sy.sy_identical;
      pr "    }")
    synth;
  pr "%s  },\n" (if synth = [] then "" else "\n");
  (* Flat like synth_speedup, for the same reason: the --compare reader
     gates these key: number pairs against the previous baseline. *)
  pr "  \"codec_big_speedup\": {";
  List.iteri
    (fun i (key, s) ->
      pr "%s\n    \"%s\": %.3f" (if i = 0 then "" else ",") (json_escape key) s)
    (codec_big_speedup_pairs codec);
  pr "%s  },\n" (if codec = [] then "" else "\n");
  pr "  \"codec\": {";
  List.iteri
    (fun i c ->
      pr "%s\n    \"%s\": {\n" (if i = 0 then "" else ",") (json_escape c.co_name);
      pr "      \"events\": %d,\n" c.co_events;
      pr "      \"text_bytes\": %d,\n" c.co_text_bytes;
      pr "      \"bin_bytes\": %d,\n" c.co_bin_bytes;
      pr "      \"bytes_per_event\": %.2f,\n"
        (rate c.co_bin_bytes (max 1 c.co_events));
      pr "      \"encode_ns\": %.0f,\n" c.co_encode_ns;
      pr "      \"decode_ns\": %.0f,\n" c.co_decode_ns;
      pr "      \"big_decode_ns\": %.0f,\n" c.co_big_ns;
      pr "      \"encode_mb_s\": %.2f,\n" (mb_per_s c.co_bin_bytes c.co_encode_ns);
      pr "      \"decode_mb_s\": %.2f,\n" (mb_per_s c.co_bin_bytes c.co_decode_ns);
      pr "      \"big_decode_mb_s\": %.2f,\n" (mb_per_s c.co_bin_bytes c.co_big_ns);
      pr "      \"big_decode_speedup\": %.3f,\n" (big_decode_speedup c);
      pr "      \"stream_decode_ns\": %.0f,\n" c.co_stream_ns;
      pr "      \"big_stream_decode_ns\": %.0f,\n" c.co_stream_big_ns;
      pr "      \"stream_decode_mb_s\": %.2f,\n"
        (mb_per_s c.co_bin_bytes c.co_stream_ns);
      pr "      \"big_stream_decode_mb_s\": %.2f,\n"
        (mb_per_s c.co_bin_bytes c.co_stream_big_ns);
      pr "      \"big_stream_speedup\": %.3f,\n" (big_stream_speedup c);
      pr "      \"encode_events_s\": %.0f,\n" (per_s c.co_events c.co_encode_ns);
      pr "      \"decode_events_s\": %.0f,\n" (per_s c.co_events c.co_decode_ns);
      pr "      \"big_decode_events_s\": %.0f,\n" (per_s c.co_events c.co_big_ns);
      pr "      \"big_stream_events_s\": %.0f\n"
        (per_s c.co_events c.co_stream_big_ns);
      pr "    }")
    codec;
  pr "\n  },\n";
  let server_ns, server_events = server in
  let journal_ns, _ = server_journal in
  let ingest_ns, ingest_events = server_ingest in
  pr "  \"server\": {\n";
  pr "    \"roundtrip_ns\": %.0f,\n" server_ns;
  pr "    \"roundtrip_events\": %d,\n" server_events;
  pr "    \"roundtrip_events_s\": %.0f,\n" (per_s server_events server_ns);
  pr "    \"journal_roundtrip_ns\": %.0f,\n" journal_ns;
  pr "    \"journal_roundtrip_events_s\": %.0f,\n" (per_s server_events journal_ns);
  pr "    \"journal_overhead\": %.3f,\n" (journal_ns /. server_ns);
  pr "    \"ingest_ns\": %.0f,\n" ingest_ns;
  pr "    \"ingest_events\": %d,\n" ingest_events;
  pr "    \"ingest_events_s\": %.0f\n" (per_s ingest_events ingest_ns);
  pr "  },\n";
  (* Flat like synth_speedup: the --compare reader gates the spill-tier
     acceptance rate against the previous baseline. *)
  pr "  \"overload\": {";
  List.iteri
    (fun i (key, v) ->
      pr "%s\n    \"%s\": %.0f" (if i = 0 then "" else ",") (json_escape key) v)
    (overload_pairs overload);
  pr "%s  },\n" (match overload with None -> "" | Some _ -> "\n");
  (match overload with
  | None -> ()
  | Some ov ->
      pr "  \"sustained_overload\": {\n";
      pr "    \"clients\": %d,\n" ov.ov_clients;
      pr "    \"events_per_client\": %d,\n" ov.ov_events;
      pr "    \"burst_ns\": %.0f,\n" ov.ov_burst_ns;
      pr "    \"accepted_events_s\": %.0f,\n" (overload_accepted_events_s ov);
      pr "    \"spilled_sessions\": %d,\n" ov.ov_spilled;
      pr "    \"caught_up\": %d\n" ov.ov_caught_up;
      pr "  },\n");
  (* Flat like synth_speedup: the --compare reader gates the predicted
     race counts against the previous baseline. *)
  pr "  \"predict_uplift\": {";
  List.iteri
    (fun i (key, v) ->
      pr "%s\n    \"%s\": %.0f" (if i = 0 then "" else ",") (json_escape key) v)
    (predict_uplift_pairs predict);
  pr "%s  },\n" (if predict = [] then "" else "\n");
  pr "  \"predict\": {";
  List.iteri
    (fun i p ->
      pr "%s\n    \"%s\": {\n" (if i = 0 then "" else ",")
        (json_escape p.pu_name);
      pr "      \"events\": %d,\n" p.pu_events;
      pr "      \"witnessed_distinct\": %d,\n" p.pu_witnessed;
      pr "      \"predicted\": %d,\n" p.pu_predicted;
      pr "      \"candidates\": %d,\n" p.pu_candidates;
      pr "      \"capped\": %d,\n" p.pu_capped;
      pr "      \"analyze_ns\": %.0f,\n" p.pu_ns;
      pr "      \"events_per_sec\": %.0f\n" (per_s p.pu_events p.pu_ns);
      pr "    }")
    predict;
  pr "%s  },\n" (if predict = [] then "" else "\n");
  pr "  \"racedb\": {\n";
  pr "    \"reports\": %d,\n" racedb.rb_reports;
  pr "    \"ingest_ns\": %.0f,\n" racedb.rb_ingest_ns;
  pr "    \"ingest_reports_s\": %.0f,\n" (per_s racedb.rb_reports racedb.rb_ingest_ns);
  pr "    \"ingest_plain_ns\": %.0f,\n" racedb.rb_ingest_plain_ns;
  pr "    \"ingest_plain_reports_s\": %.0f,\n"
    (per_s racedb.rb_reports racedb.rb_ingest_plain_ns);
  pr "    \"rollup_overhead\": %.3f,\n"
    (racedb.rb_ingest_ns /. racedb.rb_ingest_plain_ns);
  pr "    \"query_top_ns\": %.0f,\n" racedb.rb_query_ns;
  pr "    \"query_top_entries\": %d\n" racedb.rb_distinct;
  pr "  }\n}\n";
  close_out oc

(* ------------------------------------------------------------------ *)
(* Printed tables                                                      *)
(* ------------------------------------------------------------------ *)

let print_fig4_table () =
  Fmt.pr "@.## Fig 4 / Section 5.4 — conflict checks per action@.@.";
  Fmt.pr "%8s %20s %16s %20s %16s@." "|A|" "apoint-constant" "raw (no A.3)"
    "apoint-linear" "direct";
  List.iter
    (fun n ->
      let trace = fig4_trace n in
      let per_action lookups actions =
        float_of_int lookups /. float_of_int (max 1 actions)
      in
      let sc = Rd2.stats (run_rd2_on ~mode:`Constant trace) in
      let sr = Rd2.stats (run_rd2_on ~repr:dict_repr_raw ~mode:`Constant trace) in
      let sl = Rd2.stats (run_rd2_on ~mode:`Linear trace) in
      let sd = Direct.stats (run_direct_on trace) in
      Fmt.pr "%8d %16.2f/act %12.2f/act %16.2f/act %12.2f/act@." n
        (per_action sc.Rd2.lookups sc.Rd2.actions)
        (per_action sr.Rd2.lookups sr.Rd2.actions)
        (per_action sl.Rd2.lookups sl.Rd2.actions)
        (per_action sd.Direct.lookups sd.Direct.actions))
    [ 50; 100; 200; 400; 800; 1600 ];
  Fmt.pr
    "@.(the access-point detector's checks per action stay constant as the \
     trace grows;@. the linear/active-scan and direct detectors grow with \
     |A| — Section 5.4)@."

let print_fig7_table () =
  Fmt.pr "@.## Fig 7 / Theorem 6.6 — translated representations@.@.";
  Fmt.pr "%-12s %14s %14s %16s %16s@." "spec" "raw shapes" "opt shapes"
    "raw max-confl" "opt max-confl";
  List.iter
    (fun spec ->
      match (Repr.of_spec ~optimize:false spec, Repr.of_spec spec) with
      | Ok raw, Ok opt ->
          Fmt.pr "%-12s %14d %14d %16d %16d@." (Spec.name spec)
            (Repr.num_shapes raw) (Repr.num_shapes opt)
            (Repr.max_conflicts raw) (Repr.max_conflicts opt)
      | _ -> Fmt.pr "%-12s (translation failed)@." (Spec.name spec))
    (Stdspecs.all ())

let arg_value flag ~default parse =
  let v = ref default in
  Array.iteri
    (fun i a ->
      if String.equal a flag && i + 1 < Array.length Sys.argv then
        v := parse Sys.argv.(i + 1))
    Sys.argv;
  !v

let int_arg flag s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> Fmt.failwith "%s: expected an integer, got %S" flag s

let float_arg flag s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> Fmt.failwith "%s: expected a number, got %S" flag s

let () =
  let tables_only = Array.exists (String.equal "--tables-only") Sys.argv in
  let jobs =
    arg_value "--jobs" ~default:(Shard.recommended_jobs ()) (int_arg "--jobs")
  in
  (* The jobsN benchmarks and the identity check need actual sharding. *)
  let jobs = max 2 jobs in
  let out = arg_value "--out" ~default:"BENCH_results.json" Fun.id in
  let quota = arg_value "--quota" ~default:0.25 (float_arg "--quota") in
  let synth_only = Array.exists (String.equal "--synth-only") Sys.argv in
  let synth_max_events =
    arg_value "--synth-max-events" ~default:max_int
      (int_arg "--synth-max-events")
  in
  let compare_path =
    arg_value "--compare" ~default:"" Fun.id |> function "" -> None | p -> Some p
  in
  Fmt.pr "# Commutativity Race Detection — benchmark harness@.@.";
  if synth_only then begin
    (* CI's bench-parallel-smoke path: only the synth corpus (capped by
       --synth-max-events) and the speedup regression gate; the JSON
       baseline is left untouched. *)
    let synth = synth_records ~max_events:synth_max_events () in
    print_synth_table synth;
    if List.exists (fun sy -> not sy.sy_identical) synth then
      failwith "sharded synth analysis diverged from the sequential reports";
    (match compare_path with
    | None -> ()
    | Some prev_path -> (
        match
          compare_results ~prev_path ~benchmarks:[] ~synth ~codec:[]
            ~overload:None ~predict:[]
        with
        | Ok () -> ()
        | Error e ->
            Fmt.epr "%s@." e;
            exit 1));
    exit 0
  end;
  (* Table 2 (wall clock, end-to-end, deterministic race counts). *)
  let t = W.Table2.collect ~seed:1L ~scale:1 ~repeats:3 () in
  Fmt.pr "%a@." W.Table2.print t;
  print_fig4_table ();
  print_fig7_table ();
  let benchmarks =
    if tables_only then []
    else begin
      Fmt.pr "@.";
      print_bench_results ~quota (table2_tests ~jobs () @ ablation_tests ())
    end
  in
  let traces = trace_records ~jobs in
  Fmt.pr "@.## RD2 hot path per trace@.@.";
  Fmt.pr "%-44s %10s %14s %16s %12s %10s@." "trace" "actions" "lookups/act"
    "same-epoch rate" "seq ev/s" "jobs-ok";
  List.iter
    (fun tr ->
      let rate a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
      Fmt.pr "%-44s %10d %14.3f %15.1f%% %12.0f %10b@." tr.tr_name tr.tr_actions
        (rate tr.tr_lookups tr.tr_actions)
        (100.0 *. rate tr.tr_same_epoch tr.tr_actions)
        (per_s tr.tr_events tr.tr_rd2_ns)
        tr.tr_identical)
    traces;
  if List.exists (fun tr -> not tr.tr_identical) traces then
    failwith "sharded analysis diverged from the sequential reports";
  let synth = synth_records ~max_events:synth_max_events () in
  print_synth_table synth;
  if List.exists (fun sy -> not sy.sy_identical) synth then
    failwith "sharded synth analysis diverged from the sequential reports";
  let codec =
    codec_records ~synth_events:(min 200_000 (max 50_000 synth_max_events)) ()
  in
  print_codec_table codec;
  assert_big_decoder_wins codec;
  let ((server_ns, server_events) as server) = server_roundtrip () in
  let jdir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "crd-bench-journal-%d" (Unix.getpid ()))
  in
  let ((journal_ns, _) as server_journal) =
    server_roundtrip ~journal:jdir ()
  in
  (* The ingest row: a bigger synthetic trace through the zero-copy
     server path, so the events/s number measures streaming decode +
     online analysis rather than session setup. *)
  let ((ingest_ns, ingest_events) as server_ingest) =
    let events = min 200_000 (max 50_000 synth_max_events) in
    server_roundtrip ~tag:"-i"
      ~trace:(W.Synth.generate ~seed:7L (W.Synth.default ~events))
      ()
  in
  Fmt.pr "@.## Server round trip (snitch, online RD2 over a Unix socket)@.@.";
  Fmt.pr "%d events in %.2f ms (%.0f events/s)@." server_events
    (server_ns /. 1e6)
    (per_s server_events server_ns);
  Fmt.pr "with --journal: %.2f ms (%.0f events/s, %.2fx overhead)@."
    (journal_ns /. 1e6)
    (per_s server_events journal_ns)
    (journal_ns /. server_ns);
  Fmt.pr "ingest (synth/uniform/%dk): %.2f ms (%.0f events/s)@."
    (ingest_events / 1000) (ingest_ns /. 1e6)
    (per_s ingest_events ingest_ns);
  (* Sustained overload: a concurrent burst against one worker, most of
     it acked through the spill tier at decoder-plus-journal speed. *)
  let overload =
    Some
      (sustained_overload
         ~events:(min 100_000 (max 20_000 (synth_max_events / 10)))
         ())
  in
  (match overload with
  | None -> ()
  | Some ov ->
      Fmt.pr
        "sustained overload (%d clients x %dk, 1 worker): %.2f ms \
         (%.0f accepted events/s, %d spilled, %d caught up)@."
        ov.ov_clients (ov.ov_events / 1000)
        (ov.ov_burst_ns /. 1e6)
        (overload_accepted_events_s ov)
        ov.ov_spilled ov.ov_caught_up);
  let predict = predict_records ~max_events:synth_max_events () in
  print_predict_table predict;
  let racedb = racedb_bench () in
  Fmt.pr "@.## Race database (racedb_ingest / query_top)@.@.";
  Fmt.pr "%d reports ingested in %.2f ms (%.0f reports/s with rollups)@."
    racedb.rb_reports
    (racedb.rb_ingest_ns /. 1e6)
    (per_s racedb.rb_reports racedb.rb_ingest_ns);
  Fmt.pr "without rollups: %.2f ms (%.0f reports/s, %.2fx rollup overhead)@."
    (racedb.rb_ingest_plain_ns /. 1e6)
    (per_s racedb.rb_reports racedb.rb_ingest_plain_ns)
    (racedb.rb_ingest_ns /. racedb.rb_ingest_plain_ns);
  Fmt.pr "query --top 10 (cold load): %.2f ms (%d entries)@."
    (racedb.rb_query_ns /. 1e6)
    racedb.rb_distinct;
  write_json ~path:out ~jobs ~benchmarks ~traces ~synth ~codec ~server
    ~server_journal ~server_ingest ~overload ~predict ~racedb;
  Fmt.pr "@.results written to %s (jobs=%d)@." out jobs;
  if Array.exists (String.equal "--stats") Sys.argv then begin
    Fmt.pr "@.## Metrics registry after this run@.@.";
    print_string (Crd_obs.dump ())
  end;
  match compare_path with
  | None -> ()
  | Some prev_path -> (
      match
        compare_results ~prev_path ~benchmarks ~synth ~codec ~overload
          ~predict
      with
      | Ok () -> ()
      | Error e ->
          Fmt.epr "%s@." e;
          exit 1)
