#!/bin/sh
# Two-node sync smoke: two `rd2 serve --racedb` nodes ingest disjoint
# synthetic workloads, node B gossips with node A (`--peers`) under a
# fixed fault-injection seed, and the smoke passes only if:
#
#   1. both race databases converge to byte-identical `rd2 query --json`
#      output (counts, node_counts, version vectors, rollups, samples —
#      the CRDT merge is deterministic, so equality is exact);
#   2. the injected sync faults actually fired (the anti-entropy loop
#      retried through them — convergence despite faults, not around
#      them);
#   3. a standalone `rd2 sync` against the converged pair is idempotent
#      (transfers and applies nothing);
#   4. both servers drain cleanly on SIGTERM.
#
# The faults are `nth:` one-shots (deterministic regardless of timing):
# the first connect attempt, an early frame read and the first delta
# apply all fail once, so the loop's backoff-and-retry path is always
# exercised before convergence.
#
# Environment:
#   SEED    fault stream seed                 (default 42)
#   EVENTS  synthetic events per node         (default 20000)
#   RD2     path to the rd2 binary            (default _build/default/bin/rd2.exe)
set -eu
cd "$(dirname "$0")/.."

SEED="${SEED:-42}"
EVENTS="${EVENTS:-20000}"
RD2="${RD2:-_build/default/bin/rd2.exe}"

if [ ! -x "$RD2" ]; then
  echo "sync_smoke: $RD2 not built (dune build bin/rd2.exe)" >&2
  exit 2
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/crd-sync-smoke.XXXXXX")
A_PID=""
B_PID=""
cleanup() {
  [ -n "$A_PID" ] && kill -9 "$A_PID" 2>/dev/null || true
  [ -n "$B_PID" ] && kill -9 "$B_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

# --- disjoint workloads ----------------------------------------------
# Different scheduler seeds and spec mixes: the two nodes observe
# different (overlapping is fine — the join handles it) race sets.
"$RD2" synth --seed 101 -n "$EVENTS" --threads 4 \
  --format bin -o "$WORK/t1.bin"
"$RD2" synth --seed 202 -n "$EVENTS" --threads 4 \
  --mix set=5,counter=3 --format bin -o "$WORK/t2.bin"

# --- two nodes, B gossips with A -------------------------------------
FAULTS="seed=$SEED,sync_connect=nth:1,sync_read=nth:5,sync_merge=nth:2"

"$RD2" serve -a "unix:$WORK/a.sock" --workers 2 --racedb "$WORK/dbA" \
  --log info > "$WORK/a.out" 2> "$WORK/a.err" &
A_PID=$!
"$RD2" serve -a "unix:$WORK/b.sock" --workers 2 --racedb "$WORK/dbB" \
  --peers "unix:$WORK/a.sock" --sync-interval 0.5 --log info \
  --faults "$FAULTS" > "$WORK/b.out" 2> "$WORK/b.err" &
B_PID=$!

for sock in "$WORK/a.sock" "$WORK/b.sock"; do
  for _ in $(seq 1 100); do
    [ -S "$sock" ] && break
    sleep 0.1
  done
  if [ ! -S "$sock" ]; then
    echo "sync_smoke: FAIL — server for $sock never came up" >&2
    cat "$WORK/a.err" "$WORK/b.err" >&2
    exit 1
  fi
done

"$RD2" send "$WORK/t1.bin" --format bin -a "unix:$WORK/a.sock" \
  --retries 5 --backoff 0.05 --nonce smoke-a > /dev/null
"$RD2" send "$WORK/t2.bin" --format bin -a "unix:$WORK/b.sock" \
  --retries 5 --backoff 0.05 --nonce smoke-b > /dev/null

# --- convergence ------------------------------------------------------
# `rd2 query` is lock-free (reads the last committed index + segment
# tail), so polling the live databases is safe. The backoff after the
# injected failures is capped well below this 60 s budget.
CONVERGED=0
for i in $(seq 1 120); do
  "$RD2" query "$WORK/dbA" --json > "$WORK/a.json" 2>/dev/null || true
  "$RD2" query "$WORK/dbB" --json > "$WORK/b.json" 2>/dev/null || true
  if [ -s "$WORK/a.json" ] && cmp -s "$WORK/a.json" "$WORK/b.json"; then
    CONVERGED=$i
    break
  fi
  for pid in $A_PID $B_PID; do
    kill -0 "$pid" 2>/dev/null || {
      echo "sync_smoke: FAIL — a server died before convergence" >&2
      cat "$WORK/a.err" "$WORK/b.err" >&2
      exit 1
    }
  done
  sleep 0.5
done
if [ "$CONVERGED" = 0 ]; then
  echo "sync_smoke: FAIL — no convergence within 60s" >&2
  echo "--- node A json bytes: $(wc -c < "$WORK/a.json")" >&2
  echo "--- node B json bytes: $(wc -c < "$WORK/b.json")" >&2
  tail -20 "$WORK/b.err" >&2
  exit 1
fi

FAILURES=$(grep -c sync_peer_failed "$WORK/b.err" || true)
if [ "$FAILURES" -eq 0 ]; then
  echo "sync_smoke: FAIL — injected sync faults never fired" >&2
  exit 1
fi
# The JSON is a single line; count entry objects, not matching lines.
ENTRIES=$(grep -o '"fingerprint"' "$WORK/a.json" | wc -l | tr -d ' ')
if [ "$ENTRIES" -eq 0 ]; then
  echo "sync_smoke: FAIL — converged on empty databases" >&2
  exit 1
fi
echo "sync_smoke: converged after $((CONVERGED / 2))s" \
     "($ENTRIES distinct races, $FAILURES injected sync failures retried)"

# --- standalone sync is idempotent on a converged pair ----------------
# B must release its writer lock first (`rd2 sync` takes it).
kill -TERM "$B_PID"
wait "$B_PID" || {
  echo "sync_smoke: FAIL — node B exited non-zero on SIGTERM" >&2
  cat "$WORK/b.err" >&2
  exit 1
}
B_PID=""

"$RD2" sync "unix:$WORK/a.sock" --racedb "$WORK/dbB" > "$WORK/sync.out"
if ! grep -q "sent 0, received 0, applied 0 (peer applied 0)" "$WORK/sync.out"; then
  echo "sync_smoke: FAIL — sync on a converged pair transferred entries:" >&2
  cat "$WORK/sync.out" >&2
  exit 1
fi

kill -TERM "$A_PID"
wait "$A_PID" || {
  echo "sync_smoke: FAIL — node A exited non-zero on SIGTERM" >&2
  cat "$WORK/a.err" >&2
  exit 1
}
A_PID=""

# --- final offline check ---------------------------------------------
"$RD2" query "$WORK/dbA" --json > "$WORK/a.json"
"$RD2" query "$WORK/dbB" --json > "$WORK/b.json"
if ! cmp -s "$WORK/a.json" "$WORK/b.json"; then
  echo "sync_smoke: FAIL — databases diverged after shutdown" >&2
  exit 1
fi

echo "sync_smoke: PASS — $ENTRIES distinct races replicated both ways," \
     "identical query --json, idempotent re-sync, clean drains"
