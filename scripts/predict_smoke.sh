#!/bin/sh
# Predictive-pass smoke: end-to-end `rd2 predict` against `rd2 check`
# and the race database. Passes only if:
#
#   1. on a hand-built trace whose only conflicting pair is ordered by
#      an unrelated critical section, `rd2 check` sees nothing and
#      `rd2 predict` reports exactly one predicted race — the strict-
#      superset witness;
#   2. on a synthetic corpus trace, the fingerprint set in the racedb
#      written by `rd2 predict --racedb` is a superset of the
#      `rd2 check --fingerprints` set, the witnessed subset matches it
#      exactly, and the witnessed/predicted counts reported by
#      `rd2 query --provenance` agree with the predict summary line;
#   3. `rd2 predict` output is bit-identical across --jobs 1 and
#      --jobs 4;
#   4. predicted provenance survives a two-node round trip: the predict
#      racedb syncs into a serving node, a fresh third database syncs
#      from that node, and the predicted entries arrive there still
#      marked provenance=predicted.
#
# Environment:
#   EVENTS  synthetic events                  (default 20000)
#   RD2     path to the rd2 binary            (default _build/default/bin/rd2.exe)
set -eu
cd "$(dirname "$0")/.."

EVENTS="${EVENTS:-20000}"
RD2="${RD2:-_build/default/bin/rd2.exe}"

if [ ! -x "$RD2" ]; then
  echo "predict_smoke: $RD2 not built (dune build bin/rd2.exe)" >&2
  exit 2
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/crd-predict-smoke.XXXXXX")
A_PID=""
cleanup() {
  [ -n "$A_PID" ] && kill -9 "$A_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

# --- 1. strict-superset witness --------------------------------------
cat > "$WORK/uplift.trace" <<'EOF'
T0 fork T1
T0 call "dictionary:o".put("k", @1) / nil
T0 acquire l0
T0 release l0
T1 acquire l0
T1 release l0
T1 call "dictionary:o".put("k", @2) / @1
T0 join T1
EOF

if ! "$RD2" check "$WORK/uplift.trace" | grep -q "rd2: 0 races"; then
  echo "predict_smoke: FAIL — check was expected to miss the shadowed race" >&2
  exit 1
fi
"$RD2" predict "$WORK/uplift.trace" > "$WORK/uplift.out"
if ! grep -q "predicted +1" "$WORK/uplift.out"; then
  echo "predict_smoke: FAIL — predict missed the lock-shadowed race:" >&2
  cat "$WORK/uplift.out" >&2
  exit 1
fi

# --- 2. synthetic corpus + racedb ------------------------------------
"$RD2" synth --seed 7 -n "$EVENTS" --threads 4 --sync-period 16 \
  --format bin -o "$WORK/t.bin"

"$RD2" check "$WORK/t.bin" --format bin --fingerprints \
  | grep -E '^[0-9a-f]{16}$' | sort > "$WORK/check.fps"

"$RD2" predict "$WORK/t.bin" --format bin --jobs 2 --racedb "$WORK/dbP" \
  > "$WORK/predict.out"
cat "$WORK/predict.out"

json_fps() {
  # one fingerprint per line, sorted, from `rd2 query --json` output
  grep -o '"fingerprint":"[0-9a-f]*"' "$1" | cut -d'"' -f4 | sort
}
"$RD2" query "$WORK/dbP" --json > "$WORK/all.json"
"$RD2" query "$WORK/dbP" --provenance witnessed --json > "$WORK/wit.json"
"$RD2" query "$WORK/dbP" --provenance predicted --json > "$WORK/pred.json"
json_fps "$WORK/all.json" > "$WORK/db.fps"
json_fps "$WORK/wit.json" > "$WORK/db-wit.fps"
json_fps "$WORK/pred.json" > "$WORK/db-pred.fps"

if ! cmp -s "$WORK/check.fps" "$WORK/db-wit.fps"; then
  echo "predict_smoke: FAIL — witnessed racedb entries != check --fingerprints" >&2
  diff "$WORK/check.fps" "$WORK/db-wit.fps" >&2 || true
  exit 1
fi
# db.fps ⊇ check.fps (comm -23 prints check-only lines; must be none)
if [ -n "$(comm -23 "$WORK/check.fps" "$WORK/db.fps")" ]; then
  echo "predict_smoke: FAIL — predict racedb lost witnessed fingerprints" >&2
  exit 1
fi

WITNESSED_DISTINCT=$(wc -l < "$WORK/db-wit.fps" | tr -d ' ')
PREDICTED_DISTINCT=$(wc -l < "$WORK/db-pred.fps" | tr -d ' ')
SUMMARY_W=$(sed -n 's/.*witnessed [0-9]* (\([0-9]*\) distinct).*/\1/p' "$WORK/predict.out")
SUMMARY_P=$(sed -n 's/.*predicted +\([0-9]*\).*/\1/p' "$WORK/predict.out")
if [ "$WITNESSED_DISTINCT" != "$SUMMARY_W" ]; then
  echo "predict_smoke: FAIL — query witnessed=$WITNESSED_DISTINCT, predict said $SUMMARY_W" >&2
  exit 1
fi
if [ "$PREDICTED_DISTINCT" != "$SUMMARY_P" ]; then
  echo "predict_smoke: FAIL — query predicted=$PREDICTED_DISTINCT, predict said $SUMMARY_P" >&2
  exit 1
fi
# STATS hygiene: witnessed `distinct` must not count predicted entries
if ! "$RD2" db stats "$WORK/dbP" | grep -q "predicted: $PREDICTED_DISTINCT"; then
  echo "predict_smoke: FAIL — db stats predicted count mismatch:" >&2
  "$RD2" db stats "$WORK/dbP" >&2
  exit 1
fi

# --- 3. jobs determinism ---------------------------------------------
"$RD2" predict "$WORK/t.bin" --format bin --jobs 1 -v > "$WORK/j1.out"
"$RD2" predict "$WORK/t.bin" --format bin --jobs 4 -v > "$WORK/j4.out"
if ! cmp -s "$WORK/j1.out" "$WORK/j4.out"; then
  echo "predict_smoke: FAIL — predict output depends on --jobs" >&2
  diff "$WORK/j1.out" "$WORK/j4.out" >&2 || true
  exit 1
fi

# --- 4. provenance round-trip through two sync hops -------------------
"$RD2" serve -a "unix:$WORK/a.sock" --workers 1 --racedb "$WORK/dbA" \
  > "$WORK/a.out" 2> "$WORK/a.err" &
A_PID=$!
for _ in $(seq 1 100); do
  [ -S "$WORK/a.sock" ] && break
  sleep 0.1
done
[ -S "$WORK/a.sock" ] || {
  echo "predict_smoke: FAIL — server never came up" >&2
  cat "$WORK/a.err" >&2
  exit 1
}

"$RD2" sync "unix:$WORK/a.sock" --racedb "$WORK/dbP" > /dev/null
# a fresh node pulls everything from A
mkdir -p "$WORK/dbB"
"$RD2" sync "unix:$WORK/a.sock" --racedb "$WORK/dbB" > /dev/null

kill -TERM "$A_PID"
wait "$A_PID" || {
  echo "predict_smoke: FAIL — server exited non-zero on SIGTERM" >&2
  cat "$WORK/a.err" >&2
  exit 1
}
A_PID=""

"$RD2" query "$WORK/dbB" --provenance predicted --json > "$WORK/b-pred.json"
json_fps "$WORK/b-pred.json" > "$WORK/b-pred.fps"
if ! cmp -s "$WORK/db-pred.fps" "$WORK/b-pred.fps"; then
  echo "predict_smoke: FAIL — predicted provenance lost in the sync round trip" >&2
  diff "$WORK/db-pred.fps" "$WORK/b-pred.fps" >&2 || true
  exit 1
fi

echo "predict_smoke: PASS — +1 on the shadowed race," \
     "witnessed=$WITNESSED_DISTINCT predicted=$PREDICTED_DISTINCT on synth," \
     "jobs-deterministic, provenance intact across two sync hops"
