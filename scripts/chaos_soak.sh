#!/bin/sh
# Chaos soak: hammer a fault-injected `rd2 serve` with concurrent
# retrying clients and check three invariants the robustness layer
# promises (DESIGN.md section on Crd_fault):
#
#   1. the server process survives the whole soak (no crash — worker
#      deaths are respawned, never fatal);
#   2. every client that completes reports EXACTLY the races the
#      offline `rd2 check` finds on the same trace (faults may delay
#      sessions, never corrupt them);
#   3. SIGTERM at the end drains gracefully and the server exits 0.
#
# A second phase soaks the race database: a server publishing into
# --racedb is SIGKILLed (no drain, no final sync), then a compaction is
# aborted by fault injection in exactly the window a mid-compaction kill
# would hit (tmp index written, rename pending). After every insult the
# reopened database must fold to exactly the fingerprint set the offline
# `rd2 check --fingerprints` reports.
#
# The fault sequence is deterministic for a given SEED (decisions are a
# pure function of (seed, point, hit index) — see Crd_fault), so a
# failing soak reproduces with the same environment.
#
# Environment:
#   SEED      fault stream seed             (default 42)
#   DURATION  soak length in seconds        (default 60)
#   CLIENTS   concurrent senders per round  (default 4)
#   RD2       path to the rd2 binary        (default _build/default/bin/rd2.exe)
set -eu
cd "$(dirname "$0")/.."

SEED="${SEED:-42}"
DURATION="${DURATION:-60}"
CLIENTS="${CLIENTS:-4}"
RD2="${RD2:-_build/default/bin/rd2.exe}"

if [ ! -x "$RD2" ]; then
  echo "chaos_soak: $RD2 not built (dune build bin/rd2.exe)" >&2
  exit 2
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/crd-chaos.XXXXXX")
SOCK="$WORK/serve.sock"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

# --- reference: the offline race set for the soak trace ---------------
"$RD2" record snitch --format bin -o "$WORK/trace.ctrace"
"$RD2" check "$WORK/trace.ctrace" --format bin -v \
  | grep '^comm' | sort > "$WORK/expected.races"
EXPECTED=$(wc -l < "$WORK/expected.races" | tr -d ' ')
echo "chaos_soak: seed=$SEED duration=${DURATION}s clients=$CLIENTS" \
     "expected_races=$EXPECTED"

# --- fault-injected server --------------------------------------------
# Probabilities are sized so most sessions hit at least one fault over
# the soak while a 10-retry client still converges. No --resync: a
# corrupted frame must fail (and be retried) loudly, not be skipped.
FAULTS="seed=$SEED,sock_read=p:0.01,sock_write=p:0.02,decode_frame=p:0.01"
FAULTS="$FAULTS,worker_body=p:0.03,queue_push=p:0.0005,journal_append=p:0.002"

"$RD2" serve -a "unix:$SOCK" --workers 2 --backlog 16 \
  --journal "$WORK/journal" --faults "$FAULTS" \
  > "$WORK/server.out" 2> "$WORK/server.err" &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "chaos_soak: FAIL — server died on startup" >&2
    cat "$WORK/server.err" >&2
    exit 1
  }
  sleep 0.1
done

# --- soak loop --------------------------------------------------------
DEADLINE=$(( $(date +%s) + DURATION ))
ROUND=0
OK=0
FAILED=0

while [ "$(date +%s)" -lt "$DEADLINE" ]; do
  ROUND=$((ROUND + 1))
  CLIENT_PIDS=""
  i=1
  while [ "$i" -le "$CLIENTS" ]; do
    (
      out="$WORK/client.$ROUND.$i"
      if "$RD2" send "$WORK/trace.ctrace" --format bin -a "unix:$SOCK" \
           --retries 10 --backoff 0.05 --timeout 20 \
           --nonce "soak-$ROUND-$i" > "$out" 2> "$out.err"; then
        grep '^comm' "$out" | sort > "$out.races"
        if ! cmp -s "$out.races" "$WORK/expected.races"; then
          echo "round $ROUND client $i: race set mismatch" > "$out.mismatch"
        fi
      else
        echo "round $ROUND client $i: send failed: $(cat "$out.err")" \
          > "$out.failed"
      fi
    ) &
    CLIENT_PIDS="$CLIENT_PIDS $!"
    i=$((i + 1))
  done
  # Explicit pids: a bare `wait` would also wait on the server job.
  for pid in $CLIENT_PIDS; do
    wait "$pid" || true
  done
  OK=$((OK + $(ls "$WORK"/client."$ROUND".*.races 2>/dev/null | wc -l)))
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "chaos_soak: FAIL — server crashed in round $ROUND" >&2
    cat "$WORK/server.err" >&2
    exit 1
  fi
  if ls "$WORK"/client."$ROUND".*.mismatch > /dev/null 2>&1; then
    cat "$WORK"/client."$ROUND".*.mismatch >&2
    echo "chaos_soak: FAIL — completed session diverged from rd2 check" >&2
    exit 1
  fi
  FAILED=$((FAILED + $(ls "$WORK"/client."$ROUND".*.failed 2>/dev/null | wc -l)))
  rm -f "$WORK"/client."$ROUND".*
done

# Exhausting 10 retries under these fault rates is astronomically
# unlikely; any such failure points at a real bug, not bad luck.
if [ "$FAILED" -gt 0 ]; then
  echo "chaos_soak: FAIL — $FAILED client(s) exhausted their retries" >&2
  exit 1
fi
if [ "$OK" -eq 0 ]; then
  echo "chaos_soak: FAIL — no session completed during the soak" >&2
  exit 1
fi

# --- graceful shutdown ------------------------------------------------
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=""
if [ "$STATUS" -ne 0 ]; then
  echo "chaos_soak: FAIL — server exited $STATUS on SIGTERM" >&2
  cat "$WORK/server.err" >&2
  exit 1
fi

echo "chaos_soak: server final stats: $(cat "$WORK/server.out")"
echo "chaos_soak: PASS — $OK sessions verified over $ROUND rounds," \
     "0 mismatches, clean SIGTERM drain"

# --- racedb phase: publish, SIGKILL, aborted compaction ---------------
"$RD2" check "$WORK/trace.ctrace" --format bin --fingerprints \
  | grep -E '^[0-9a-f]{16}$' | sort > "$WORK/expected.fps"
if [ ! -s "$WORK/expected.fps" ]; then
  echo "chaos_soak: FAIL — offline check found no fingerprints" >&2
  exit 1
fi

DBDIR="$WORK/racedb"
SOCK2="$WORK/serve2.sock"
RACEDB_SENDS=3
"$RD2" serve -a "unix:$SOCK2" --workers 2 --racedb "$DBDIR" \
  > "$WORK/server2.out" 2> "$WORK/server2.err" &
SERVER_PID=$!
for _ in $(seq 1 100); do
  [ -S "$SOCK2" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "chaos_soak: FAIL — racedb server died on startup" >&2
    cat "$WORK/server2.err" >&2
    exit 1
  }
  sleep 0.1
done

i=1
while [ "$i" -le "$RACEDB_SENDS" ]; do
  "$RD2" send "$WORK/trace.ctrace" --format bin -a "unix:$SOCK2" \
    --retries 5 --backoff 0.05 --nonce "racedb-$i" > /dev/null
  i=$((i + 1))
done

query_fps() {
  "$RD2" query "$DBDIR" --json \
    | grep -o '"fingerprint":"[0-9a-f]*"' | cut -d'"' -f4 | sort
}

# The publisher thread appends asynchronously; wait (lock-free reads)
# until the last session's verdicts hit the segment log, then SIGKILL:
# no drain, no close, no fsync, no commit marker — recovery must
# salvage every published verdict from the raw segment bytes.
for _ in $(seq 1 100); do
  query_fps > "$WORK/db.fps" 2>/dev/null || true
  cmp -s "$WORK/db.fps" "$WORK/expected.fps" && break
  sleep 0.1
done
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

check_fps() {
  query_fps > "$WORK/db.fps"
  if ! cmp -s "$WORK/db.fps" "$WORK/expected.fps"; then
    echo "chaos_soak: FAIL — racedb diverged from rd2 check ($1)" >&2
    diff "$WORK/expected.fps" "$WORK/db.fps" >&2 || true
    exit 1
  fi
}

check_fps "after SIGKILL"

# Abort a compaction in the kill window (tmp index written, rename
# pending): the command must fail loudly and the store must be intact.
if CRD_FAULTS="seed=$SEED,racedb_compact=once" \
     "$RD2" db compact "$DBDIR" > /dev/null 2>&1; then
  echo "chaos_soak: FAIL — injected compaction abort reported success" >&2
  exit 1
fi
check_fps "after aborted compaction"

# The clean retry folds everything into the index; still the same set.
"$RD2" db compact "$DBDIR" > /dev/null
check_fps "after compaction"

echo "chaos_soak: PASS — racedb fingerprint set stable across SIGKILL," \
     "aborted compaction, and compaction ($RACEDB_SENDS sessions)"
