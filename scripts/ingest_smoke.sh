#!/bin/sh
# Ingest-path smoke: drive the zero-copy ingest pipeline end to end and
# check race-set identity against the offline analyzer.
#
#   1. generate a 100k-event synthetic binary trace (`rd2 synth`);
#   2. `rd2 check` it offline — mmap + Bigcodec decode — for the
#      reference race set;
#   3. `rd2 serve --journal`, then `rd2 send` the same file through the
#      streaming ingest loop (bigstring decoder + journal appends from
#      the same read slice) and compare the server's reply race set to
#      the offline one;
#   4. send once more under an io_eintr fault storm (every:7): the
#      EINTR-retry wrappers in Proto must make the session
#      indistinguishable from an undisturbed one;
#   5. SIGTERM must drain the server cleanly.
#
# Environment:
#   EVENTS  synthetic trace size  (default 100000)
#   RD2     path to the rd2 binary (default _build/default/bin/rd2.exe)
set -eu
cd "$(dirname "$0")/.."

EVENTS="${EVENTS:-100000}"
RD2="${RD2:-_build/default/bin/rd2.exe}"

if [ ! -x "$RD2" ]; then
  echo "ingest_smoke: $RD2 not built (dune build bin/rd2.exe)" >&2
  exit 2
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/crd-ingest.XXXXXX")
SOCK="$WORK/serve.sock"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

# --- trace + offline reference ---------------------------------------
"$RD2" synth -n "$EVENTS" --seed 7 --format bin -o "$WORK/trace.ctrace"
"$RD2" check "$WORK/trace.ctrace" --format bin -v \
  | grep '^comm' | sort > "$WORK/expected.races"
EXPECTED=$(wc -l < "$WORK/expected.races" | tr -d ' ')
echo "ingest_smoke: events=$EVENTS expected_races=$EXPECTED"

# --- server with the EINTR fault point armed --------------------------
# every:7 fires on the 7th, 14th, ... io_eintr consultation — both
# sends below run through a storm of injected EINTRs on every socket
# read and write, exercising the retry loops, not just one hiccup.
"$RD2" serve -a "unix:$SOCK" --workers 2 --journal "$WORK/journal" \
  --faults "seed=42,io_eintr=every:7" \
  > "$WORK/server.out" 2> "$WORK/server.err" &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "ingest_smoke: FAIL — server died on startup" >&2
    cat "$WORK/server.err" >&2
    exit 1
  }
  sleep 0.1
done

run_send() {
  nonce="$1"
  "$RD2" send "$WORK/trace.ctrace" --format bin -a "unix:$SOCK" \
    --retries 3 --timeout 60 --nonce "$nonce" > "$WORK/reply.$nonce" || {
    echo "ingest_smoke: FAIL — send $nonce failed" >&2
    cat "$WORK/server.err" >&2
    exit 1
  }
  grep '^comm' "$WORK/reply.$nonce" | sort > "$WORK/races.$nonce"
  if ! cmp -s "$WORK/races.$nonce" "$WORK/expected.races"; then
    echo "ingest_smoke: FAIL — online race set ($nonce) != offline rd2 check" >&2
    diff "$WORK/expected.races" "$WORK/races.$nonce" | head -20 >&2
    exit 1
  fi
  echo "ingest_smoke: $nonce OK ($EXPECTED races, identical to offline)"
}

run_send smoke-1
run_send smoke-2

# --- graceful shutdown ------------------------------------------------
kill -TERM "$SERVER_PID"
i=0
while kill -0 "$SERVER_PID" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "ingest_smoke: FAIL — server did not drain after SIGTERM" >&2
    exit 1
  fi
  sleep 0.1
done
wait "$SERVER_PID" 2>/dev/null || {
  status=$?
  if [ "$status" -ne 0 ]; then
    echo "ingest_smoke: FAIL — server exited $status after SIGTERM" >&2
    cat "$WORK/server.err" >&2
    exit 1
  fi
}
SERVER_PID=""
echo "ingest_smoke: PASS"
