#!/bin/sh
# Source hygiene gate — the `dune build @fmt` equivalent for toolchains
# without ocamlformat. Rejects trailing whitespace and tab indentation
# in OCaml sources (the conventions the tree already follows), so
# formatting drift fails CI instead of accumulating.
set -eu
cd "$(dirname "$0")/.."

TAB=$(printf '\t')
status=0

bad=$(grep -rlE "[ $TAB]+\$" --include='*.ml' --include='*.mli' \
  bin lib test bench 2>/dev/null || true)
if [ -n "$bad" ]; then
  echo "lint: trailing whitespace in:"
  echo "$bad" | sed 's/^/  /'
  status=1
fi

bad=$(grep -rl "$TAB" --include='*.ml' --include='*.mli' \
  bin lib test bench 2>/dev/null || true)
if [ -n "$bad" ]; then
  echo "lint: tab characters in:"
  echo "$bad" | sed 's/^/  /'
  status=1
fi

[ "$status" -eq 0 ] && echo "lint: ok"
exit "$status"
