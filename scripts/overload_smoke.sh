#!/bin/sh
# Overload-path smoke: drive the degradation ladder end to end and
# check that overload never costs evidence.
#
#   1. generate a synthetic binary trace (`rd2 synth`);
#   2. `rd2 check` it offline for the reference race set;
#   3. `rd2 serve --workers 1 --spill-watermark 1 --journal ...`:
#      a one-worker server that spills instead of queueing when
#      concurrent sessions pile up;
#   4. fire CLIENTS concurrent `rd2 send`s — every one must be acked
#      OK (live or spilled: never BUSY, never an error);
#   5. `rd2 health` until the spill backlog drains, then compare every
#      session's journal report race set against the offline one —
#      spilled sessions must catch up to the identical race set;
#   6. SIGTERM must drain the server cleanly.
#
# Environment:
#   EVENTS   synthetic trace size    (default 50000)
#   CLIENTS  concurrent sessions     (default 6)
#   RD2      path to the rd2 binary  (default _build/default/bin/rd2.exe)
set -eu
cd "$(dirname "$0")/.."

EVENTS="${EVENTS:-50000}"
CLIENTS="${CLIENTS:-6}"
RD2="${RD2:-_build/default/bin/rd2.exe}"

if [ ! -x "$RD2" ]; then
  echo "overload_smoke: $RD2 not built (dune build bin/rd2.exe)" >&2
  exit 2
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/crd-overload.XXXXXX")
SOCK="$WORK/serve.sock"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

# --- trace + offline reference ---------------------------------------
"$RD2" synth -n "$EVENTS" --seed 7 --format bin -o "$WORK/trace.ctrace"
"$RD2" check "$WORK/trace.ctrace" --format bin -v \
  | grep '^comm' | sort > "$WORK/expected.races"
EXPECTED=$(wc -l < "$WORK/expected.races" | tr -d ' ')
echo "overload_smoke: events=$EVENTS clients=$CLIENTS expected_races=$EXPECTED"

# --- one worker, spill-happy ladder, watchdog armed -------------------
"$RD2" serve -a "unix:$SOCK" --workers 1 --journal "$WORK/journal" \
  --spill-watermark 1 --memory-budget 512m --stall-timeout 30 \
  > "$WORK/server.out" 2> "$WORK/server.err" &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "overload_smoke: FAIL — server died on startup" >&2
    cat "$WORK/server.err" >&2
    exit 1
  }
  sleep 0.1
done

# --- concurrent over-capacity burst -----------------------------------
i=1
while [ "$i" -le "$CLIENTS" ]; do
  "$RD2" send "$WORK/trace.ctrace" --format bin -a "unix:$SOCK" \
    --retries 3 --timeout 60 --nonce "smoke-$i" > "$WORK/reply.smoke-$i" 2>&1 &
  eval "SEND_PID_$i=$!"
  i=$((i + 1))
done
i=1
while [ "$i" -le "$CLIENTS" ]; do
  eval "pid=\$SEND_PID_$i"
  wait "$pid" || {
    echo "overload_smoke: FAIL — send smoke-$i failed" >&2
    cat "$WORK/reply.smoke-$i" >&2
    cat "$WORK/server.err" >&2
    exit 1
  }
  i=$((i + 1))
done
echo "overload_smoke: all $CLIENTS concurrent sessions acked"

# --- wait for the catch-up drainer via the health probe ---------------
BACKLOG=""
for _ in $(seq 1 200); do
  HEALTH=$("$RD2" health "unix:$SOCK")
  BACKLOG=$(printf '%s\n' "$HEALTH" | sed -n 's/.*spill_backlog=\([0-9]*\).*/\1/p')
  [ "$BACKLOG" = "0" ] && break
  sleep 0.1
done
echo "overload_smoke: $HEALTH"
if [ "$BACKLOG" != "0" ]; then
  echo "overload_smoke: FAIL — spill backlog never drained" >&2
  cat "$WORK/server.err" >&2
  exit 1
fi
SPILLED=$(printf '%s\n' "$HEALTH" | sed -n 's/.*spilled=\([0-9]*\).*/\1/p')

# --- race-set identity, live and caught-up alike ----------------------
i=1
while [ "$i" -le "$CLIENTS" ]; do
  REPORT="$WORK/journal/smoke-$i.report"
  if [ ! -f "$REPORT" ]; then
    echo "overload_smoke: FAIL — no journal report for smoke-$i" >&2
    exit 1
  fi
  grep '^comm' "$REPORT" | sort > "$WORK/races.smoke-$i"
  if ! cmp -s "$WORK/races.smoke-$i" "$WORK/expected.races"; then
    echo "overload_smoke: FAIL — race set smoke-$i != offline rd2 check" >&2
    diff "$WORK/expected.races" "$WORK/races.smoke-$i" | head -20 >&2
    exit 1
  fi
  i=$((i + 1))
done
echo "overload_smoke: $CLIENTS race sets identical to offline (spilled=${SPILLED:-?})"

# --- graceful shutdown ------------------------------------------------
kill -TERM "$SERVER_PID"
i=0
while kill -0 "$SERVER_PID" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "overload_smoke: FAIL — server did not drain after SIGTERM" >&2
    exit 1
  fi
  sleep 0.1
done
wait "$SERVER_PID" 2>/dev/null || {
  status=$?
  if [ "$status" -ne 0 ]; then
    echo "overload_smoke: FAIL — server exited $status after SIGTERM" >&2
    cat "$WORK/server.err" >&2
    exit 1
  fi
}
SERVER_PID=""
echo "overload_smoke: PASS"
