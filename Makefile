# Convenience targets; everything is plain dune underneath.

.PHONY: all test bench-smoke bench-parallel-smoke bench clean

all:
	dune build

test:
	dune runtest

# Tables + per-trace RD2 stats + jobs-equality check, no bechamel timing.
bench-smoke:
	dune build @bench-smoke

# Capped synthetic corpus + parallel-speedup gate vs BENCH_results.json.
bench-parallel-smoke:
	dune build @bench-parallel-smoke

# Full benchmark run; writes BENCH_results.json in the working directory.
bench:
	dune exec bench/main.exe

clean:
	dune clean
